"""Multi-core serving: process-sharded Prognos engines.

One :class:`~repro.serve.server.PrognosServer` saturates a single core
— the asyncio loop hosts the readers *and* the micro-batch engine, so
sessions/s is capped by one Python process regardless of the host.
This module scales the daemon across cores: a controller process forks
``REPRO_SERVE_SHARDS`` engine worker processes (default
``cpu_count() - 1``), each running the PR 7 micro-batch engine
unchanged, and routes every UE session to exactly one shard.

**Fork inheritance, not pickling.** Shards are forked from the
controller after the trained bootstrap patterns, Prognos config, and
carrier event-config lists are already in memory — the same pattern as
the :mod:`repro.simulate.fanout` registry: nothing is serialized per
shard, and a respawned shard re-inherits the same objects because the
controller still holds them.

**Routing** (``ServerConfig.routing`` / ``REPRO_SERVE_ROUTING``):

* ``reuseport`` — every shard opens its own listener on the shared
  port with ``SO_REUSEPORT``; the kernel distributes connections and
  the controller never touches a byte of session traffic.
* ``handoff`` — the controller accepts, reads exactly the handshake
  frame (:func:`~repro.serve.protocol.read_frame_sock` never
  over-reads, so pipelined bytes stay in the kernel buffer), picks the
  shard by a consistent hash of the session id, and passes the
  connection fd over a Unix datagram socketpair with
  ``socket.send_fds``. Tick frames never transit the controller.
* ``auto`` — ``reuseport`` where the platform has it, else
  ``handoff``.

**Handoff resync.** The controller keeps its duplicate of a handed-off
connection open until the shard acknowledges adoption over the control
channel. If the shard dies first, the fd is still alive in the
controller and is re-sent to the respawned shard — a session caught
mid-handoff survives its shard's crash without the client noticing.

**Failure ladder** (generalizing the in-process engine ladder, on top
of :mod:`repro.robust` supervision): a dead shard process is detected
by control-channel EOF, reaped with
:func:`repro.robust.supervisor.reap_process`, and respawned after the
deterministic jittered :func:`repro.robust.supervisor.backoff_s`; its
unacknowledged handoffs are resynced to the new process. Past the
``shard_restarts`` budget the shard is respawned *degraded* — inline
sequential serving, that shard alone — while sibling shards keep their
micro-batch engines and their sessions' byte streams untouched.

**Session resumption across shards.** When a shard parks a session
(unclean disconnect) it exports the pickled
:class:`~repro.serve.session.SessionState` — journal, inbox, learner —
over the control channel into the controller's bounded **orphan
pool**; the local copy is dropped. A resume landing on *any* shard
thus misses locally and claims the state back from the controller by
``(session, token)``, so both routing modes survive reconnects that
land on a different process, and a shard refork hands its sessions to
the successor for free. **Graceful drain** builds on the same path:
``drain`` over the control channel makes a shard stop accepting, flush
in-flight ticks, send byes carrying resume tokens, export every
remaining session, and exit — :meth:`ShardedPrognosServer.
rolling_drain` does this one slot at a time (the planned exit skips
the restart penalty and backoff), while SIGTERM drains the whole
daemon in parallel before shutdown.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
import hashlib
import hmac
import json
import os
import pickle
import signal
import socket
import struct
from collections import OrderedDict
from dataclasses import replace
from functools import partial

from repro.robust.supervisor import backoff_s, reap_process
from repro.serve import protocol
from repro.serve.env import env_choice, env_int
from repro.serve.server import MAX_EXPORT, PrognosServer, ServerConfig

#: Largest handshake frame the controller will hand off (a hello is
#: JSON and small; a Unix datagram comfortably carries this).
HANDOFF_MAX = 1 << 17
#: How long the controller waits for a client's handshake frame before
#: dropping the connection (keeps half-open sockets from pinning fds).
HANDSHAKE_TIMEOUT_S = 30.0
#: How long a respawn waits to reap the dead shard before SIGKILL.
REAP_TIMEOUT_S = 5.0
#: Control-channel line limit: an exported session blob rides base64
#: on one newline-JSON line, so the default 64 KiB would truncate it.
CONTROL_LIMIT = 8 << 20
#: Most parked sessions the controller holds for adoption; past this
#: the oldest orphan is dropped (its client restarts the drive).
ORPHAN_POOL_MAX = 4096

_SEQ = struct.Struct("<Q")

ROUTING_MODES = ("auto", "reuseport", "handoff")


# ----------------------------------------------------------------------
# Knobs and routing resolution
# ----------------------------------------------------------------------


def serve_shards() -> int:
    """Shard count from ``REPRO_SERVE_SHARDS``.

    Defaults to ``cpu_count() - 1`` (one core stays with the
    controller/OS); malformed or non-positive values warn once and fall
    back to that default (:mod:`repro.serve.env`).
    """
    default = max(1, (os.cpu_count() or 2) - 1)
    return env_int("REPRO_SERVE_SHARDS", default, minimum=1)


def resolve_shards(config: ServerConfig) -> int:
    """Effective shard count for a server config."""
    if config.shards is None:
        return serve_shards()
    return max(1, int(config.shards))


def reuseport_available() -> bool:
    """Whether kernel ``SO_REUSEPORT`` listener sharding is usable."""
    return hasattr(socket, "SO_REUSEPORT")


def fd_passing_available() -> bool:
    """Whether ``socket.send_fds`` fd handoff is usable."""
    return hasattr(socket, "send_fds") and hasattr(socket, "recv_fds")


def resolve_routing(config: ServerConfig) -> str:
    """Pick the concrete routing mode for a sharded server."""
    mode = (config.routing or "auto").strip().lower()
    if mode not in ROUTING_MODES:
        raise ValueError(f"unknown routing mode {config.routing!r}")
    if mode == "auto":
        mode = env_choice("REPRO_SERVE_ROUTING", "auto", ROUTING_MODES)
    if mode == "auto":
        mode = "reuseport" if reuseport_available() else "handoff"
    if mode == "reuseport" and not reuseport_available():
        mode = "handoff"
    if mode == "handoff" and not fd_passing_available():
        raise RuntimeError("fd handoff requires socket.send_fds (Unix)")
    return mode


def shard_for_session(session_id: str, n_shards: int) -> int:
    """Consistent session→shard hash (stable across processes/runs)."""
    if n_shards <= 1:
        return 0
    digest = hashlib.sha256(session_id.encode("utf-8", "replace")).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


# ----------------------------------------------------------------------
# fd handoff wire helpers (unit-tested in tests/test_serve_shard.py)
# ----------------------------------------------------------------------


def send_handoff(sock: socket.socket, seq: int, payload: bytes, fd: int) -> None:
    """One handoff datagram: 8-byte sequence, handshake frame, the fd."""
    socket.send_fds(sock, [_SEQ.pack(seq) + payload], [fd])


def recv_handoff(sock: socket.socket) -> tuple[int, bytes, int]:
    """Receive one handoff datagram; raises ``BlockingIOError`` when
    the socket is drained. Returns ``(seq, payload, fd)``."""
    msg, fds, flags, _addr = socket.recv_fds(sock, HANDOFF_MAX + _SEQ.size, 4)
    if flags & getattr(socket, "MSG_CTRUNC", 0) or not fds:
        for fd in fds:
            with contextlib.suppress(OSError):
                os.close(fd)
        raise OSError("truncated fd handoff datagram")
    for extra in fds[1:]:
        with contextlib.suppress(OSError):
            os.close(extra)
    (seq,) = _SEQ.unpack_from(msg)
    return seq, msg[_SEQ.size :], fds[0]


# ----------------------------------------------------------------------
# Shard child process
# ----------------------------------------------------------------------


def _shard_child(
    config: ServerConfig,
    shard_id: int,
    generation: int,
    control_sock: socket.socket,
    handoff_sock: socket.socket | None,
    listen_addr: tuple[str, int] | None,
) -> int:
    """Forked shard body: fresh event loop, one engine, never returns
    to the caller's frame (the fork site ``os._exit``s the result)."""
    # The controller's loop installed signal plumbing we must not
    # inherit-use: reset before creating this process's own loop.
    signal.set_wakeup_fd(-1)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    try:
        return loop.run_until_complete(
            _shard_serve(
                config, shard_id, generation, control_sock, handoff_sock, listen_addr
            )
        )
    except Exception:
        return 1
    finally:
        with contextlib.suppress(Exception):
            loop.close()


async def _shard_serve(
    config: ServerConfig,
    shard_id: int,
    generation: int,
    control_sock: socket.socket,
    handoff_sock: socket.socket | None,
    listen_addr: tuple[str, int] | None,
) -> int:
    loop = asyncio.get_running_loop()
    server = PrognosServer(config, shard_id=shard_id, generation=generation)
    port = 0
    if listen_addr is not None:
        lsock = socket.socket()
        lsock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        lsock.bind(listen_addr)
        lsock.listen(512)
        lsock.setblocking(False)
        port = lsock.getsockname()[1]
        await server.start(sock=lsock)
    else:
        await server.start_engine()

    control_sock.setblocking(False)
    creader, cwriter = await asyncio.open_connection(
        sock=control_sock, limit=CONTROL_LIMIT
    )
    stop = asyncio.Event()
    adopted = 0
    draining = False
    claims: dict[int, asyncio.Future] = {}
    next_claim = 0

    def _send_control(message: dict) -> None:
        with contextlib.suppress(Exception):
            cwriter.write(json.dumps(message, separators=(",", ":")).encode() + b"\n")

    def _export_state(session_id: str, token: str, blob: bytes) -> None:
        _send_control(
            {
                "t": "export",
                "session": session_id,
                "token": token,
                "blob": base64.b64encode(blob).decode(),
            }
        )

    async def _claim_state(session_id: str, token: str) -> bytes | None:
        nonlocal next_claim
        claim_id = next_claim
        next_claim += 1
        future = loop.create_future()
        claims[claim_id] = future
        _send_control(
            {"t": "claim", "id": claim_id, "session": session_id, "token": token}
        )
        try:
            blob64 = await asyncio.wait_for(future, timeout=5.0)
        except (asyncio.TimeoutError, asyncio.CancelledError):
            return None
        finally:
            claims.pop(claim_id, None)
        if not blob64:
            return None
        try:
            return base64.b64decode(blob64)
        except (ValueError, TypeError):
            return None

    server.export_state_cb = _export_state
    server.claim_state_cb = _claim_state

    async def _do_drain(deadline) -> None:
        """Drain, export every surviving session, report, exit."""
        nonlocal draining
        if draining:
            return
        draining = True
        await server.drain(deadline if isinstance(deadline, (int, float)) else None)
        for state in server.extract_states():
            try:
                blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception:
                continue
            if len(blob) > MAX_EXPORT:
                continue
            _export_state(state.session_id, state.token, blob)
        _send_control({"t": "drained"})
        with contextlib.suppress(Exception):
            await cwriter.drain()
        stop.set()

    loop.add_signal_handler(
        signal.SIGTERM, lambda: loop.create_task(_do_drain(None))
    )

    if handoff_sock is not None:
        handoff_sock.setblocking(False)

        def _on_handoff() -> None:
            nonlocal adopted
            while True:
                try:
                    seq, payload, fd = recv_handoff(handoff_sock)
                except (BlockingIOError, InterruptedError):
                    return
                except OSError:
                    loop.remove_reader(handoff_sock.fileno())
                    stop.set()
                    return
                conn = socket.socket(fileno=fd)
                conn.setblocking(False)
                adopted += 1
                server.adopt(conn, payload)
                # Ack *after* adopt: from here the connection is this
                # shard's failure domain and the controller releases
                # its duplicate.
                _send_control({"t": "adopted", "seq": seq})

        loop.add_reader(handoff_sock.fileno(), _on_handoff)

    async def _control_loop() -> None:
        while True:
            try:
                line = await creader.readline()
            except (ConnectionError, OSError):
                line = b""
            if not line:
                stop.set()  # controller is gone: no reason to live
                return
            try:
                message = json.loads(line)
            except json.JSONDecodeError:
                continue
            kind = message.get("t")
            if kind == "stats":
                stats = server.stats()
                stats["adopted"] = adopted
                _send_control({"t": "stats", "stats": stats})
            elif kind == "state":
                future = claims.get(message.get("id"))
                if future is not None and not future.done():
                    future.set_result(message.get("blob"))
            elif kind == "yank":
                # A resume for a session this shard still holds landed
                # on a sibling; surrender the state through the
                # controller (token-checked inside yank_state).
                blob = server.yank_state(
                    message.get("session"), message.get("token")
                )
                _send_control(
                    {
                        "t": "yanked",
                        "id": message.get("id"),
                        "blob": base64.b64encode(blob).decode() if blob else None,
                    }
                )
            elif kind == "drain":
                loop.create_task(_do_drain(message.get("deadline")))

    control_task = asyncio.create_task(_control_loop())
    _send_control({"t": "ready", "port": port})
    await stop.wait()
    control_task.cancel()
    with contextlib.suppress(asyncio.CancelledError):
        await control_task
    await server.shutdown()
    with contextlib.suppress(Exception):
        cwriter.close()
    return 0


# ----------------------------------------------------------------------
# Controller
# ----------------------------------------------------------------------


class _Shard:
    """Controller-side bookkeeping for one engine worker process."""

    __slots__ = (
        "id",
        "pid",
        "restarts",
        "degraded",
        "ready",
        "port",
        "control_sock",
        "control_reader",
        "control_writer",
        "handoff_sock",
        "pending",
        "sent",
        "writer_armed",
        "monitor",
        "stats_future",
        "draining",
        "drained",
    )

    def __init__(self, shard_id: int) -> None:
        self.id = shard_id
        self.pid = -1
        self.restarts = 0
        self.degraded = False
        self.ready = asyncio.Event()
        self.port = 0
        self.control_sock: socket.socket | None = None
        self.control_reader = None
        self.control_writer = None
        self.handoff_sock: socket.socket | None = None
        #: seq → (client socket, handshake payload); kept until the
        #: shard acks adoption so a crash can resync the handoff.
        self.pending: dict[int, tuple[socket.socket, bytes]] = {}
        self.sent: set[int] = set()
        self.writer_armed = False
        self.monitor: asyncio.Task | None = None
        self.stats_future: asyncio.Future | None = None
        #: A planned (rolling-drain) exit is underway: the respawn
        #: skips the crash penalty and the backoff.
        self.draining = False
        self.drained = asyncio.Event()


class ShardedPrognosServer:
    """Acceptor/controller in front of ``n`` forked engine shards.

    Presents the same lifecycle surface as
    :class:`~repro.serve.server.PrognosServer` (``start`` /
    ``shutdown`` / ``port`` / async context manager) so
    :func:`repro.serve.loadgen.spawn_server` can fork either
    interchangeably; ``stats()`` is a coroutine here because it polls
    the shards over their control channels.
    """

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.n_shards = resolve_shards(self.config)
        self.routing = resolve_routing(self.config)
        self._shards: list[_Shard] = []
        self._listen_sock: socket.socket | None = None
        self._placeholder: socket.socket | None = None
        self._accept_task: asyncio.Task | None = None
        self._route_tasks: set[asyncio.Task] = set()
        self._routing_conns: set[socket.socket] = set()
        self._next_seq = 0
        self._port = 0
        self._running = False
        self._draining = False
        #: Parked sessions exported by shards, keyed by session id;
        #: bounded FIFO — see ORPHAN_POOL_MAX.
        self._orphans: OrderedDict[str, tuple[str, str]] = OrderedDict()
        self.orphans_claimed = 0
        self.orphans_dropped = 0
        #: In-flight claim-miss yanks: yank id → pending record.
        self._yanks: dict[int, dict] = {}
        self._next_yank = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        assert self._port, "server not started"
        return self._port

    async def __aenter__(self) -> "ShardedPrognosServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.shutdown()

    async def start(self) -> None:
        self._running = True
        host = self.config.host
        if self.routing == "reuseport":
            # Reserve the port without listening: shards open their own
            # SO_REUSEPORT listeners on it; the placeholder keeps the
            # reservation alive across shard respawns.
            sock = socket.socket()
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((host, self.config.port))
            self._placeholder = sock
            self._port = sock.getsockname()[1]
        else:
            sock = socket.socket()
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, self.config.port))
            sock.listen(512)
            sock.setblocking(False)
            self._listen_sock = sock
            self._port = sock.getsockname()[1]
        for shard_id in range(self.n_shards):
            shard = _Shard(shard_id)
            self._shards.append(shard)
            self._spawn(shard)
        await asyncio.wait_for(
            asyncio.gather(*(s.ready.wait() for s in self._shards)), timeout=60.0
        )
        if self._listen_sock is not None:
            self._accept_task = asyncio.create_task(self._accept_loop())

    def _send_drain(self, shard: _Shard, deadline_s: float | None) -> bool:
        if not shard.ready.is_set() or shard.control_writer is None:
            return False
        shard.drained = asyncio.Event()
        message = {"t": "drain", "deadline": deadline_s}
        try:
            shard.control_writer.write(
                json.dumps(message, separators=(",", ":")).encode() + b"\n"
            )
        except Exception:
            return False
        return True

    async def drain(self, deadline_s: float | None = None) -> None:
        """Full-daemon graceful drain (SIGTERM path): every shard
        drains in parallel — byes with resume tokens, sessions exported
        — then exits; no successors are forked."""
        if self._draining:
            return
        self._draining = True
        if self._accept_task is not None:
            self._accept_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._accept_task
            self._accept_task = None
        sent = [s for s in self._shards if self._send_drain(s, deadline_s)]
        budget = (deadline_s if deadline_s is not None else 30.0) + 10.0
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(
                asyncio.gather(*(s.drained.wait() for s in sent)), timeout=budget
            )

    async def rolling_drain(self, deadline_s: float | None = None) -> None:
        """Drain and refork one shard at a time.

        While a slot is down, its sessions' resumes land on siblings
        (``reuseport``) or park in the controller's pending handoffs
        until the successor reports ready (``handoff``); either way the
        exported state is claimed from the orphan pool, so no session
        restarts. The planned exit skips the crash penalty, leaving the
        restart budget intact.
        """
        loop = asyncio.get_running_loop()
        for shard in self._shards:
            if not self._running or self._draining:
                return
            old_pid = shard.pid
            shard.draining = True
            if not self._send_drain(shard, deadline_s):
                shard.draining = False
                continue
            budget = (deadline_s if deadline_s is not None else 30.0) + 10.0
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(shard.drained.wait(), timeout=budget)
            # The child exits after reporting drained; the monitor
            # reforks the slot (planned, no backoff). Wait for the
            # successor so at most one slot is ever down.
            deadline = loop.time() + 60.0
            while loop.time() < deadline and (
                shard.pid == old_pid or not shard.ready.is_set()
            ):
                if not self._running:
                    return
                await asyncio.sleep(0.02)

    async def shutdown(self) -> None:
        self._running = False
        if self._accept_task is not None:
            self._accept_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._accept_task
            self._accept_task = None
        for task in list(self._route_tasks):
            task.cancel()
        loop = asyncio.get_running_loop()
        for shard in self._shards:
            if shard.monitor is not None:
                shard.monitor.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await shard.monitor
            with contextlib.suppress(ProcessLookupError, OSError):
                os.kill(shard.pid, signal.SIGTERM)
        for shard in self._shards:
            if shard.pid > 0:
                await loop.run_in_executor(
                    None, partial(reap_process, shard.pid, timeout_s=REAP_TIMEOUT_S)
                )
            self._close_shard_sockets(shard)
            for conn, _payload in shard.pending.values():
                with contextlib.suppress(OSError):
                    conn.close()
            shard.pending.clear()
        for conn in list(self._routing_conns):
            with contextlib.suppress(OSError):
                conn.close()
        self._routing_conns.clear()
        for sock in (self._listen_sock, self._placeholder):
            if sock is not None:
                with contextlib.suppress(OSError):
                    sock.close()
        self._listen_sock = None
        self._placeholder = None
        self._shards.clear()

    # ------------------------------------------------------------------
    # Spawning and supervision
    # ------------------------------------------------------------------

    def _engine_config(self, degraded: bool) -> ServerConfig:
        return replace(
            self.config,
            shards=1,
            batched=self.config.batched and not degraded,
        )

    def _controller_fds(self) -> list[int]:
        """Every controller-side fd a freshly forked shard must close."""
        socks: list[socket.socket] = []
        if self._listen_sock is not None:
            socks.append(self._listen_sock)
        if self._placeholder is not None:
            socks.append(self._placeholder)
        for shard in self._shards:
            if shard.control_sock is not None:
                socks.append(shard.control_sock)
            if shard.handoff_sock is not None:
                socks.append(shard.handoff_sock)
            for conn, _payload in shard.pending.values():
                socks.append(conn)
        socks.extend(self._routing_conns)
        fds = []
        for sock in socks:
            with contextlib.suppress(OSError, ValueError):
                fds.append(sock.fileno())
        return [fd for fd in fds if fd >= 0]

    def _spawn(self, shard: _Shard) -> None:
        """Fork one engine worker; models are inherited, never pickled."""
        control_parent, control_child = socket.socketpair()
        handoff_parent = handoff_child = None
        if self.routing == "handoff":
            handoff_parent, handoff_child = socket.socketpair(
                socket.AF_UNIX, socket.SOCK_DGRAM
            )
        listen_addr = (
            (self.config.host, self._port) if self.routing == "reuseport" else None
        )
        close_in_child = self._controller_fds()
        degraded = shard.degraded
        config = self._engine_config(degraded)
        pid = os.fork()
        if pid == 0:
            status = 1
            try:
                control_parent.close()
                if handoff_parent is not None:
                    handoff_parent.close()
                for fd in close_in_child:
                    with contextlib.suppress(OSError):
                        os.close(fd)
                status = _shard_child(
                    config,
                    shard.id,
                    shard.restarts,
                    control_child,
                    handoff_child,
                    listen_addr,
                )
            finally:
                os._exit(status)
        control_child.close()
        if handoff_child is not None:
            handoff_child.close()
        shard.pid = pid
        shard.control_sock = control_parent
        shard.handoff_sock = handoff_parent
        shard.sent.clear()
        shard.writer_armed = False
        shard.monitor = asyncio.create_task(self._monitor(shard))

    def _close_shard_sockets(self, shard: _Shard) -> None:
        if shard.control_writer is not None:
            with contextlib.suppress(Exception):
                shard.control_writer.close()
            shard.control_reader = None
            shard.control_writer = None
        elif shard.control_sock is not None:
            with contextlib.suppress(OSError):
                shard.control_sock.close()
        shard.control_sock = None
        if shard.handoff_sock is not None:
            if shard.writer_armed:
                with contextlib.suppress(Exception):
                    asyncio.get_running_loop().remove_writer(
                        shard.handoff_sock.fileno()
                    )
                shard.writer_armed = False
            with contextlib.suppress(OSError):
                shard.handoff_sock.close()
            shard.handoff_sock = None

    async def _monitor(self, shard: _Shard) -> None:
        """Drive one shard's control channel; respawn it on EOF."""
        sock = shard.control_sock
        sock.setblocking(False)
        try:
            reader, writer = await asyncio.open_connection(
                sock=sock, limit=CONTROL_LIMIT
            )
        except OSError:
            return
        shard.control_reader = reader
        shard.control_writer = writer
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = json.loads(line)
                except json.JSONDecodeError:
                    continue
                kind = message.get("t")
                if kind == "ready":
                    shard.port = int(message.get("port") or 0)
                    shard.ready.set()
                    self._flush_handoffs(shard)
                elif kind == "adopted":
                    entry = shard.pending.pop(message.get("seq"), None)
                    shard.sent.discard(message.get("seq"))
                    if entry is not None:
                        with contextlib.suppress(OSError):
                            entry[0].close()
                elif kind == "stats":
                    future = shard.stats_future
                    if future is not None and not future.done():
                        future.set_result(message.get("stats"))
                elif kind == "export":
                    self._store_orphan(message)
                elif kind == "claim":
                    self._answer_claim(shard, message)
                elif kind == "yanked":
                    self._on_yanked(message)
                elif kind == "drained":
                    shard.drained.set()
        except (ConnectionError, OSError):
            pass
        if not self._running or self._draining:
            return
        planned = shard.draining
        shard.draining = False
        await self._respawn(shard, planned=planned)

    def _store_orphan(self, message: dict) -> None:
        """Bank one exported session for a later claim."""
        session_id = message.get("session")
        token = message.get("token")
        blob64 = message.get("blob")
        if not (
            isinstance(session_id, str)
            and isinstance(token, str)
            and isinstance(blob64, str)
        ):
            return
        self._orphans.pop(session_id, None)
        self._orphans[session_id] = (token, blob64)
        while len(self._orphans) > ORPHAN_POOL_MAX:
            self._orphans.popitem(last=False)
            self.orphans_dropped += 1

    def _reply_claim(self, shard: _Shard, req_id, blob64) -> None:
        reply = {"t": "state", "id": req_id, "blob": blob64}
        if shard.control_writer is not None:
            with contextlib.suppress(Exception):
                shard.control_writer.write(
                    json.dumps(reply, separators=(",", ":")).encode() + b"\n"
                )

    def _answer_claim(self, shard: _Shard, message: dict) -> None:
        """Resolve a shard's resume miss — orphan pool first, then yank.

        A resume can land on a sibling before the owner shard has even
        noticed the disconnect (``SO_REUSEPORT`` picks listeners at
        random), so a pool miss fans a token-carrying yank out to every
        other live shard; the first shard holding the session exports it
        on demand and the claim is answered with that blob. Only when
        every shard denies it (or the backstop timer fires — a yanked
        shard can die mid-answer) does the claimant get a miss and the
        client a restart.
        """
        session_id = message.get("session")
        token = message.get("token")
        req_id = message.get("id")
        entry = self._orphans.get(session_id) if isinstance(session_id, str) else None
        if (
            entry is not None
            and isinstance(token, str)
            and hmac.compare_digest(entry[0], token)
        ):
            self.orphans_claimed += 1
            self._reply_claim(shard, req_id, self._orphans.pop(session_id)[1])
            return
        others = [
            s
            for s in self._shards
            if s is not shard and s.ready.is_set() and s.control_writer is not None
        ]
        if not (others and isinstance(session_id, str) and isinstance(token, str)):
            self._reply_claim(shard, req_id, None)
            return
        self._next_yank += 1
        yank_id = self._next_yank
        record = {
            "shard": shard,
            "req": req_id,
            "left": 0,
            "session": session_id,
            "token": token,
        }
        self._yanks[yank_id] = record
        data = (
            json.dumps(
                {"t": "yank", "id": yank_id, "session": session_id, "token": token},
                separators=(",", ":"),
            ).encode()
            + b"\n"
        )
        for other in others:
            try:
                other.control_writer.write(data)
            except Exception:
                continue
            record["left"] += 1
        if record["left"] == 0:
            del self._yanks[yank_id]
            self._reply_claim(shard, req_id, None)
            return
        # Backstop under the claimant's own 5 s wait.
        asyncio.get_running_loop().call_later(2.0, self._expire_yank, yank_id)

    def _finish_yank_miss(self, record: dict) -> None:
        """Every shard denied the yank (or the backstop fired).

        Re-check the orphan pool before giving up: the owner may have
        been exporting the session while the claim raced past it, and
        its control channel is ordered — the export message lands here
        before its yank denial does.
        """
        entry = self._orphans.get(record["session"])
        if entry is not None and hmac.compare_digest(entry[0], record["token"]):
            self.orphans_claimed += 1
            self._reply_claim(
                record["shard"],
                record["req"],
                self._orphans.pop(record["session"])[1],
            )
        else:
            self._reply_claim(record["shard"], record["req"], None)

    def _expire_yank(self, yank_id: int) -> None:
        record = self._yanks.pop(yank_id, None)
        if record is not None:
            self._finish_yank_miss(record)

    def _on_yanked(self, message: dict) -> None:
        yank_id = message.get("id")
        record = self._yanks.get(yank_id)
        if record is None:
            return
        blob64 = message.get("blob")
        if isinstance(blob64, str) and blob64:
            del self._yanks[yank_id]
            self.orphans_claimed += 1
            self._reply_claim(record["shard"], record["req"], blob64)
            return
        record["left"] -= 1
        if record["left"] <= 0:
            del self._yanks[yank_id]
            self._finish_yank_miss(record)

    async def _respawn(self, shard: _Shard, planned: bool = False) -> None:
        """The shard process died: reap, back off, fork a successor.

        Unacknowledged handoffs stay in ``shard.pending`` — their
        client fds are still open here — and are re-sent to the new
        process once it reports ready. Past the restart budget the
        successor runs degraded (inline sequential), alone. A
        ``planned`` exit (rolling drain) is not a crash: no restart
        strike, no backoff — the slot reforks immediately.
        """
        shard.ready = asyncio.Event()
        loop = asyncio.get_running_loop()
        if shard.pid > 0:
            await loop.run_in_executor(
                None, partial(reap_process, shard.pid, timeout_s=REAP_TIMEOUT_S)
            )
        self._close_shard_sockets(shard)
        if not planned:
            shard.restarts += 1
            if shard.restarts > self.config.shard_restarts:
                shard.degraded = True
        future = shard.stats_future
        if future is not None and not future.done():
            future.cancel()
        if not planned:
            await asyncio.sleep(backoff_s(shard.restarts, salt=f"shard-{shard.id}"))
        if not self._running:
            return
        self._spawn(shard)

    # ------------------------------------------------------------------
    # Accept + route (handoff mode)
    # ------------------------------------------------------------------

    async def _accept_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while self._running:
            try:
                conn, _addr = await loop.sock_accept(self._listen_sock)
            except (OSError, asyncio.CancelledError):
                return
            task = asyncio.create_task(self._route(conn))
            self._route_tasks.add(task)
            task.add_done_callback(self._route_tasks.discard)

    async def _route(self, conn: socket.socket) -> None:
        """Read the handshake, pick the shard, hand the fd over."""
        loop = asyncio.get_running_loop()
        self._routing_conns.add(conn)
        routed = False
        try:
            conn.setblocking(False)
            try:
                payload = await asyncio.wait_for(
                    protocol.read_frame_sock(loop, conn), HANDSHAKE_TIMEOUT_S
                )
            except (protocol.FrameError, asyncio.TimeoutError, OSError):
                payload = None
            if payload is None or len(payload) > HANDOFF_MAX:
                return
            session_id = ""
            with contextlib.suppress(protocol.FrameError):
                hello = protocol.decode_json(payload)
                if isinstance(hello.get("session"), str):
                    session_id = hello["session"]
            shard = self._shards[shard_for_session(session_id, self.n_shards)]
            seq = self._next_seq
            self._next_seq += 1
            shard.pending[seq] = (conn, payload)
            routed = True
            self._flush_handoffs(shard)
        finally:
            self._routing_conns.discard(conn)
            if not routed:
                with contextlib.suppress(OSError):
                    conn.close()

    def _flush_handoffs(self, shard: _Shard) -> None:
        """Send every not-yet-sent pending handoff to a ready shard."""
        if not shard.ready.is_set() or shard.handoff_sock is None:
            return
        for seq, (conn, payload) in list(shard.pending.items()):
            if seq in shard.sent:
                continue
            try:
                send_handoff(shard.handoff_sock, seq, payload, conn.fileno())
            except (BlockingIOError, InterruptedError):
                self._arm_flush_writer(shard)
                return
            except OSError:
                # Shard is dying; the monitor's respawn will resync.
                return
            shard.sent.add(seq)

    def _arm_flush_writer(self, shard: _Shard) -> None:
        if shard.writer_armed or shard.handoff_sock is None:
            return
        loop = asyncio.get_running_loop()
        fd = shard.handoff_sock.fileno()

        def _writable() -> None:
            with contextlib.suppress(Exception):
                loop.remove_writer(fd)
            shard.writer_armed = False
            self._flush_handoffs(shard)

        loop.add_writer(fd, _writable)
        shard.writer_armed = True

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    async def stats(self) -> dict:
        """Controller + per-shard engine stats (queue depths, drops,
        restarts); shards are polled over their control channels."""
        loop = asyncio.get_running_loop()
        per_shard = []
        for shard in self._shards:
            entry = {
                "shard": shard.id,
                "pid": shard.pid,
                "restarts": shard.restarts,
                "degraded": shard.degraded,
                "alive": shard.ready.is_set(),
                "pending_handoffs": len(shard.pending),
            }
            if shard.ready.is_set() and shard.control_writer is not None:
                future = loop.create_future()
                shard.stats_future = future
                try:
                    shard.control_writer.write(b'{"t":"stats"}\n')
                    await shard.control_writer.drain()
                    entry["engine"] = await asyncio.wait_for(future, timeout=5.0)
                except (Exception, asyncio.TimeoutError):
                    entry["alive"] = False
                finally:
                    shard.stats_future = None
            per_shard.append(entry)
        engines = [e["engine"] for e in per_shard if "engine" in e]
        return {
            "shards": self.n_shards,
            "routing": self.routing,
            "batched": self.config.batched,
            "sessions": sum(e["sessions"] for e in engines),
            "restarts": sum(s["restarts"] for s in per_shard),
            "dropped": sum(e["dropped"] for e in engines),
            "lost": sum(e["lost"] for e in engines),
            "shed": sum(e.get("shed", 0) for e in engines),
            "resumed": sum(e.get("resumed", 0) for e in engines),
            "resume_misses": sum(e.get("resume_misses", 0) for e in engines),
            "replayed": sum(e.get("replayed", 0) for e in engines),
            "evicted_idle": sum(e.get("evicted_idle", 0) for e in engines),
            "evicted_dead": sum(e.get("evicted_dead", 0) for e in engines),
            "orphans": len(self._orphans),
            "orphans_claimed": self.orphans_claimed,
            "per_shard": per_shard,
        }


def make_server(config: ServerConfig | None = None):
    """The right daemon for a config: sharded when it resolves to more
    than one engine process, the single-process server otherwise."""
    config = config or ServerConfig()
    if resolve_shards(config) > 1:
        return ShardedPrognosServer(config)
    return PrognosServer(config)
