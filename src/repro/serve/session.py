"""Per-UE serving state: Prognos + streaming forecaster + ABR loop.

One :class:`ServingSession` holds everything the server keeps per
connected UE, with no asyncio in sight — the tests drive it directly
and the server wraps it with connection plumbing. Both server modes go
through the same state transitions:

* **sequential** — :meth:`step_sequential` runs the scalar
  :meth:`~repro.core.prognos.Prognos.step` per frame (the per-session
  baseline the bench compares against);
* **micro-batched** — :meth:`begin_tick` feeds the shared
  :class:`~repro.serve.forecast.StreamingForecaster` and gates the
  tick's configs, the engine runs the cross-session
  :func:`~repro.serve.forecast.forecast_batch`, and
  :meth:`finish_tick` runs the learner-coupled tail
  (:meth:`~repro.core.prognos.Prognos.step_with_forecast`).

The split is exactly the offline evaluator's plan/stream split, so both
modes produce bit-identical predictions to
:func:`repro.core.evaluation.run_prognos_over_logs` on the same frames.

The ABR leg mirrors §7.4's player loop: observe the finished chunk's
throughput (feeding the robustMPC error discount and the harmonic-mean
predictor), then select the next chunk's level. :meth:`abr_entry`
performs the state advance and returns an
:func:`~repro.apps.abr.algorithms.mpc_select_many` row, so the batched
engine can score every ready session against one shared plan matrix;
sequential mode calls :meth:`~repro.apps.abr.algorithms._MpcBase.select`
on the same row.
"""

from __future__ import annotations

import itertools
from collections import deque

from repro.apps.abr.algorithms import RobustMpc
from repro.apps.abr.prediction import HarmonicMeanPredictor
from repro.core.patterns import Pattern
from repro.core.prognos import Prognos, PrognosConfig
from repro.rrc.events import EventConfig
from repro.rrc.taxonomy import HandoverType
from repro.serve.forecast import StreamingForecaster


class ServingSession:
    """Everything the server holds for one connected UE."""

    def __init__(
        self,
        session_id: str,
        event_configs: list[EventConfig],
        *,
        prognos_config: PrognosConfig | None = None,
        standalone: bool = False,
        bootstrap: dict[Pattern, int] | None = None,
        levels_mbps: list[float] | None = None,
        chunk_s: float = 4.0,
        batched: bool = True,
    ) -> None:
        self.session_id = session_id
        self.standalone = standalone
        self.prognos = Prognos(event_configs, prognos_config)
        if bootstrap:
            self.prognos.bootstrap(bootstrap)
        # A fresh connection is a log boundary by definition.
        self.prognos.start_log()
        self.forecaster = (
            StreamingForecaster(event_configs, config=prognos_config)
            if batched
            else None
        )
        self.levels_mbps = [float(x) for x in levels_mbps] if levels_mbps else None
        self.chunk_s = float(chunk_s)
        self.abr = RobustMpc() if self.levels_mbps else None
        self.throughput = HarmonicMeanPredictor() if self.levels_mbps else None
        self._last_predicted: float | None = None
        self.ticks = 0

    # ------------------------------------------------------------------
    # RRC event stream (identical in both modes).
    # ------------------------------------------------------------------

    def observe_report(self, label: str, time_s: float) -> None:
        self.prognos.observe_report(label, time_s)

    def observe_command(self, ho_type: HandoverType, time_s: float) -> None:
        self.prognos.observe_command(ho_type, time_s)

    def start_log(self) -> None:
        """Log boundary: reset radio history, keep the learner."""
        self.prognos.start_log()
        if self.forecaster is not None:
            self.forecaster.reset()

    # ------------------------------------------------------------------
    # Per-tick prediction.
    # ------------------------------------------------------------------

    def step_sequential(self, time_s, rsrp, serving, neighbours, scoped):
        """One scalar Prognos step (the per-session baseline path)."""
        self.ticks += 1
        return self.prognos.step(
            time_s,
            rsrp,
            serving,
            neighbours,
            standalone=self.standalone,
            scoped_neighbours=scoped,
        )

    def begin_tick(self, time_s, rsrp, serving, neighbours, scoped):
        """Batched front half: RRS observe + config gating.

        Returns the :class:`~repro.serve.forecast.TickPlan` the engine
        feeds to :func:`~repro.serve.forecast.forecast_batch` alongside
        every other ready session's.
        """
        self.forecaster.observe(time_s, rsrp)
        return self.forecaster.prepare(serving, neighbours, scoped)

    def finish_tick(self, time_s, serving, predicted):
        """Batched back half: the learner-coupled prediction tail."""
        self.ticks += 1
        return self.prognos.step_with_forecast(
            time_s, serving, predicted, standalone=self.standalone
        )

    # ------------------------------------------------------------------
    # ABR leg.
    # ------------------------------------------------------------------

    def abr_entry(
        self, observed_mbps: float, buffer_s: float, last_level: int
    ) -> tuple | None:
        """Advance the throughput/error state; return a select row.

        The row is ``(algo, levels, buffer_s, last_level, predicted,
        chunk_s)`` — sequential mode calls ``algo.select(*row[1:])`` on
        it, the batched engine collects rows across sessions into one
        :func:`~repro.apps.abr.algorithms.mpc_select_many` call. The
        state advance (error feedback before the rate observation,
        prediction recorded for the next chunk's error) is the player
        loop order, identical either way.
        """
        if self.abr is None:
            return None
        if observed_mbps > 0:
            if self._last_predicted is not None:
                self.abr.observe_error(self._last_predicted, observed_mbps)
            self.throughput.observe(observed_mbps)
        predicted = self.throughput.predict_mbps()
        self._last_predicted = predicted
        return (
            self.abr,
            self.levels_mbps,
            buffer_s,
            int(last_level),
            predicted,
            self.chunk_s,
        )


class SessionState:
    """The part of a session that outlives its TCP connection.

    Everything resumption needs rides here: the resume token handed out
    in the welcome, both sequence counters, a bounded replay journal of
    fully-framed prediction bytes (so a replayed tail is bit-identical
    to the original sends), the ordered inbox of accepted-but-unserved
    frames, and the accounting the bye frame reports. The live
    ``_Connection`` is deliberately *not* part of the state — it is the
    one field dropped on pickling, which is how a shard exports a
    detached session over the control channel for a successor (or a
    sibling, under ``SO_REUSEPORT`` routing) to adopt.
    """

    __slots__ = (
        "session_id",
        "session",
        "token",
        "policy",
        "replay_limit",
        "out_seq",
        "in_seq",
        "journal",
        "overflow",
        "dropped",
        "lost",
        "ticks_in",
        "resumes",
        "inbox",
        "pending",
        "finished",
        "gone",
        "detached_at",
        "conn",
    )

    def __init__(
        self,
        session_id: str,
        session: ServingSession | None,
        *,
        token: str,
        policy: str = "drop",
        replay_limit: int = 0,
    ) -> None:
        self.session_id = session_id
        self.session = session
        self.token = token
        self.policy = policy
        self.replay_limit = int(replay_limit)
        #: Last prediction sequence sent / last client sequence applied.
        self.out_seq = 0
        self.in_seq = 0
        self.journal: deque[bytes] = deque()
        #: Predictions aged out of the journal (no longer replayable).
        self.overflow = 0
        self.dropped = 0
        self.lost = 0
        self.ticks_in = 0
        self.resumes = 0
        self.inbox: deque = deque()
        #: Accepted-but-unanswered ticks (inbound backpressure unit).
        self.pending = 0
        self.finished = False
        #: Retired, replaced, or exported — the engine must skip it.
        self.gone = False
        self.detached_at: float | None = None
        self.conn = None

    def __getstate__(self) -> dict:
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["conn"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)

    def record(self, payload: bytes) -> None:
        """Journal one framed prediction; the caller encoded it with
        sequence ``out_seq + 1``."""
        self.out_seq += 1
        if self.replay_limit <= 0:
            self.overflow += 1
            return
        if len(self.journal) >= self.replay_limit:
            self.journal.popleft()
            self.overflow += 1
        self.journal.append(payload)

    def replay_from(self, last_seq: int) -> list[bytes] | None:
        """The framed tail after ``last_seq``, oldest first.

        ``None`` when the journal has overflowed past the client's
        cursor — the tail cannot be replayed bit-identically, so the
        resume must be refused and the client restarts the drive.
        """
        start = self.out_seq - len(self.journal) + 1
        if last_seq + 1 < start:
            return None
        if last_seq >= self.out_seq:
            return []
        return list(itertools.islice(self.journal, last_seq + 1 - start, None))
