"""Per-UE serving state: Prognos + streaming forecaster + ABR loop.

One :class:`ServingSession` holds everything the server keeps per
connected UE, with no asyncio in sight — the tests drive it directly
and the server wraps it with connection plumbing. Both server modes go
through the same state transitions:

* **sequential** — :meth:`step_sequential` runs the scalar
  :meth:`~repro.core.prognos.Prognos.step` per frame (the per-session
  baseline the bench compares against);
* **micro-batched** — :meth:`begin_tick` feeds the shared
  :class:`~repro.serve.forecast.StreamingForecaster` and gates the
  tick's configs, the engine runs the cross-session
  :func:`~repro.serve.forecast.forecast_batch`, and
  :meth:`finish_tick` runs the learner-coupled tail
  (:meth:`~repro.core.prognos.Prognos.step_with_forecast`).

The split is exactly the offline evaluator's plan/stream split, so both
modes produce bit-identical predictions to
:func:`repro.core.evaluation.run_prognos_over_logs` on the same frames.

The ABR leg mirrors §7.4's player loop: observe the finished chunk's
throughput (feeding the robustMPC error discount and the harmonic-mean
predictor), then select the next chunk's level. :meth:`abr_entry`
performs the state advance and returns an
:func:`~repro.apps.abr.algorithms.mpc_select_many` row, so the batched
engine can score every ready session against one shared plan matrix;
sequential mode calls :meth:`~repro.apps.abr.algorithms._MpcBase.select`
on the same row.
"""

from __future__ import annotations

from repro.apps.abr.algorithms import RobustMpc
from repro.apps.abr.prediction import HarmonicMeanPredictor
from repro.core.patterns import Pattern
from repro.core.prognos import Prognos, PrognosConfig
from repro.rrc.events import EventConfig
from repro.rrc.taxonomy import HandoverType
from repro.serve.forecast import StreamingForecaster


class ServingSession:
    """Everything the server holds for one connected UE."""

    def __init__(
        self,
        session_id: str,
        event_configs: list[EventConfig],
        *,
        prognos_config: PrognosConfig | None = None,
        standalone: bool = False,
        bootstrap: dict[Pattern, int] | None = None,
        levels_mbps: list[float] | None = None,
        chunk_s: float = 4.0,
        batched: bool = True,
    ) -> None:
        self.session_id = session_id
        self.standalone = standalone
        self.prognos = Prognos(event_configs, prognos_config)
        if bootstrap:
            self.prognos.bootstrap(bootstrap)
        # A fresh connection is a log boundary by definition.
        self.prognos.start_log()
        self.forecaster = (
            StreamingForecaster(event_configs, config=prognos_config)
            if batched
            else None
        )
        self.levels_mbps = [float(x) for x in levels_mbps] if levels_mbps else None
        self.chunk_s = float(chunk_s)
        self.abr = RobustMpc() if self.levels_mbps else None
        self.throughput = HarmonicMeanPredictor() if self.levels_mbps else None
        self._last_predicted: float | None = None
        self.ticks = 0

    # ------------------------------------------------------------------
    # RRC event stream (identical in both modes).
    # ------------------------------------------------------------------

    def observe_report(self, label: str, time_s: float) -> None:
        self.prognos.observe_report(label, time_s)

    def observe_command(self, ho_type: HandoverType, time_s: float) -> None:
        self.prognos.observe_command(ho_type, time_s)

    def start_log(self) -> None:
        """Log boundary: reset radio history, keep the learner."""
        self.prognos.start_log()
        if self.forecaster is not None:
            self.forecaster.reset()

    # ------------------------------------------------------------------
    # Per-tick prediction.
    # ------------------------------------------------------------------

    def step_sequential(self, time_s, rsrp, serving, neighbours, scoped):
        """One scalar Prognos step (the per-session baseline path)."""
        self.ticks += 1
        return self.prognos.step(
            time_s,
            rsrp,
            serving,
            neighbours,
            standalone=self.standalone,
            scoped_neighbours=scoped,
        )

    def begin_tick(self, time_s, rsrp, serving, neighbours, scoped):
        """Batched front half: RRS observe + config gating.

        Returns the :class:`~repro.serve.forecast.TickPlan` the engine
        feeds to :func:`~repro.serve.forecast.forecast_batch` alongside
        every other ready session's.
        """
        self.forecaster.observe(time_s, rsrp)
        return self.forecaster.prepare(serving, neighbours, scoped)

    def finish_tick(self, time_s, serving, predicted):
        """Batched back half: the learner-coupled prediction tail."""
        self.ticks += 1
        return self.prognos.step_with_forecast(
            time_s, serving, predicted, standalone=self.standalone
        )

    # ------------------------------------------------------------------
    # ABR leg.
    # ------------------------------------------------------------------

    def abr_entry(
        self, observed_mbps: float, buffer_s: float, last_level: int
    ) -> tuple | None:
        """Advance the throughput/error state; return a select row.

        The row is ``(algo, levels, buffer_s, last_level, predicted,
        chunk_s)`` — sequential mode calls ``algo.select(*row[1:])`` on
        it, the batched engine collects rows across sessions into one
        :func:`~repro.apps.abr.algorithms.mpc_select_many` call. The
        state advance (error feedback before the rate observation,
        prediction recorded for the next chunk's error) is the player
        loop order, identical either way.
        """
        if self.abr is None:
            return None
        if observed_mbps > 0:
            if self._last_predicted is not None:
                self.abr.observe_error(self._last_predicted, observed_mbps)
            self.throughput.observe(observed_mbps)
        predicted = self.throughput.predict_mbps()
        self._last_predicted = predicted
        return (
            self.abr,
            self.levels_mbps,
            buffer_s,
            int(last_level),
            predicted,
            self.chunk_s,
        )
