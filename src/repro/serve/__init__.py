"""Prognos-as-a-service: the online micro-batched serving layer.

Offline replay (:func:`repro.core.evaluation.run_prognos_over_logs`)
answers "what would Prognos have predicted over this corpus"; this
package answers "what does Prognos predict *right now* for thousands of
concurrently connected UEs". A long-lived asyncio TCP server
(:mod:`repro.serve.server`) multiplexes per-UE sessions speaking a
length-prefixed binary protocol (:mod:`repro.serve.protocol`), and a
cross-session micro-batcher (:mod:`repro.serve.batcher` +
:mod:`repro.serve.forecast`) coalesces ready ticks from all sessions
into single batched forecast/trigger/MPC passes that are bit-identical
to the per-session scalar pipeline.

One engine process is one core; :mod:`repro.serve.shard` scales the
daemon across cores by forking ``REPRO_SERVE_SHARDS`` engine worker
processes behind an acceptor/controller that routes each UE session to
a shard — kernel-side via ``SO_REUSEPORT`` listeners or user-side via
consistent-hash fd handoff — and respawns/degrades crashed shards
individually.

The closed-loop load generator (:mod:`repro.serve.loadgen`) drives
simulated clients from drive logs or corpus slices and measures
sessions/sec and per-tick latency percentiles for the bench
(``benchmarks/bench_serving.py`` → ``BENCH_serving.json``).
"""

from repro.serve.batcher import BatchTuning
from repro.serve.protocol import FrameDecoder, FrameError, MAX_FRAME
from repro.serve.server import PrognosServer, ServerConfig
from repro.serve.shard import ShardedPrognosServer, make_server

__all__ = [
    "BatchTuning",
    "FrameDecoder",
    "FrameError",
    "MAX_FRAME",
    "PrognosServer",
    "ServerConfig",
    "ShardedPrognosServer",
    "make_server",
]
