"""Closed-loop load generator: corpus-driven clients for the server.

Each simulated UE replays one drive's measurement stream over a real
TCP connection, window-1 closed loop: send the tick, wait for the
prediction, advance. The per-tick latency (send → prediction) and the
end-to-end wall time therefore measure the server's whole serving path
under concurrency — protocol, batching, model, backpressure — not a
synthetic kernel.

Scripts are pre-encoded once per drive
(:func:`build_script` reuses the offline evaluator's replay plan, so
reports and commands interleave with ticks in exactly the order
:func:`~repro.core.evaluation.run_prognos_over_logs` drains them); per
send only the three ABR feedback fields are patched in place
(:data:`~repro.serve.protocol.ABR_PATCH`), keeping client-side CPU out
of the measurement as far as possible. The client's buffer model is
deterministic, so two runs over the same scripts (e.g. the bench's
sequential vs micro-batched servers) present byte-identical inputs.

Clients run on a ``selectors`` loop — ``run_load``, optionally forked
across ``processes`` worker processes so a single generator core can't
bottleneck a multi-shard server under test — and the helpers
:func:`spawn_server` / :func:`stop_server` fork a serving daemon
(sharded when the config resolves to more than one engine process) for
benches, tests, and the CI smoke CLI (``python -m repro.serve.loadgen``).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import pickle
import selectors
import signal
import socket
import sys
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.evaluation import _replay_plan, configs_for_log
from repro.robust.supervisor import reap_process
from repro.serve import protocol
from repro.serve.protocol import ABR_PATCH, ABR_PATCH_OFFSET, FrameDecoder, frame
from repro.serve.server import ServerConfig
from repro.serve.shard import make_server, resolve_shards

#: A DASH-style ladder spanning the simulated capacity range (Mbps).
DEFAULT_LEVELS_MBPS = [3.0, 7.5, 12.0, 18.5, 28.5, 43.0]
DEFAULT_CHUNK_S = 4.0
#: Client-side playout buffer model.
START_BUFFER_S = 8.0
MAX_BUFFER_S = 30.0


# ----------------------------------------------------------------------
# Script building
# ----------------------------------------------------------------------


@dataclass
class ClientScript:
    """One session's pre-encoded frame sequence."""

    session_id: str
    hello: dict
    #: Per tick: (buffer holding any due event frames + the tick frame,
    #: byte offset of the tick frame within the buffer).
    steps: list[tuple[bytearray, int]]
    #: Per tick: the observed throughput fed back on the next tick.
    observed_mbps: list[float]
    levels_mbps: list[float]
    chunk_s: float

    @property
    def n_ticks(self) -> int:
        return len(self.steps)


def build_script(
    log,
    session_id: str,
    event_configs,
    *,
    wants_abr: bool = True,
    levels_mbps: list[float] | None = None,
    chunk_s: float = DEFAULT_CHUNK_S,
    policy: str = "drop",
    standalone: bool = False,
    max_ticks: int | None = None,
) -> ClientScript:
    """Pre-encode one drive as a client session.

    The replay plan is the offline evaluator's own, so the server-side
    event drain order — and therefore the prediction stream — matches
    :func:`~repro.core.evaluation.run_prognos_over_logs` over the same
    single drive.
    """
    plan = _replay_plan(log, 1.0, 1)
    capacities = [t.total_capacity_mbps for t in log.ticks]
    levels = list(levels_mbps or DEFAULT_LEVELS_MBPS)
    steps: list[tuple[bytearray, int]] = []
    observed: list[float] = []
    e_idx = 0
    events = plan.events
    n = len(plan.step_times)
    if max_ticks is not None:
        n = min(n, max_ticks)
    for pos in range(n):
        now = plan.step_times[pos]
        parts = bytearray()
        while e_idx < len(events) and events[e_idx][0] <= pos:
            _, kind, payload, event_time = events[e_idx]
            if kind == 0:
                parts += frame(protocol.encode_report(payload, event_time))
            else:
                parts += frame(protocol.encode_command(payload, event_time))
            e_idx += 1
        tick_off = len(parts)
        rsrp, serving, neighbours, scoped = plan.step_inputs[pos]
        parts += frame(
            protocol.encode_tick(
                now,
                rsrp,
                serving,
                neighbours,
                scoped,
                wants_abr=wants_abr,
                observed_mbps=0.0,
                buffer_s=0.0,
                last_level=0,
            )
        )
        steps.append((parts, tick_off))
        observed.append(float(capacities[pos]))
    hello = {
        "type": "hello",
        "version": protocol.PROTOCOL_VERSION,
        "session": session_id,
        "standalone": standalone,
        "policy": policy,
        "events": protocol.encode_event_configs(event_configs),
    }
    if wants_abr:
        hello["abr"] = {"levels_mbps": levels, "chunk_s": chunk_s}
    return ClientScript(session_id, hello, steps, observed, levels, chunk_s)


# ----------------------------------------------------------------------
# The selectors client engine
# ----------------------------------------------------------------------


class _Client:
    __slots__ = (
        "script",
        "sock",
        "decoder",
        "step",
        "buffer_s",
        "last_level",
        "observed",
        "t_send",
        "latencies_ns",
        "predictions",
        "collect",
        "abort_after",
        "outbuf",
        "state",
        "bye",
        "error",
        "mask",
    )

    def __init__(self, script: ClientScript, collect: bool, abort_after: int | None):
        self.script = script
        self.sock: socket.socket | None = None
        self.decoder = FrameDecoder()
        self.step = 0
        self.buffer_s = START_BUFFER_S
        self.last_level = 0
        self.observed = 0.0
        self.t_send = 0
        self.latencies_ns: list[int] = []
        self.predictions: list[tuple] = []
        self.collect = collect
        self.abort_after = abort_after
        self.outbuf = b""
        self.state = "hello"
        self.bye: dict | None = None
        self.error: str | None = None
        self.mask = 0


def run_load(
    port: int,
    scripts: list[ClientScript],
    *,
    host: str = "127.0.0.1",
    collect: bool = False,
    abort_after: dict[str, int] | None = None,
    timeout_s: float = 600.0,
    processes: int = 1,
) -> "LoadgenResult":
    """Drive every script to completion against a running server.

    With ``processes > 1`` the scripts are struck round-robin across
    that many forked generator processes (each its own ``selectors``
    loop and core) and the per-process results are merged — raw
    latencies included, so percentiles stay exact. Required to
    saturate a multi-shard server: one generator process is itself a
    single-core closed loop.
    """
    if processes > 1 and len(scripts) > 1:
        return _run_load_forked(
            port,
            scripts,
            host=host,
            collect=collect,
            abort_after=abort_after,
            timeout_s=timeout_s,
            processes=min(processes, len(scripts)),
        )
    sel = selectors.DefaultSelector()
    abort_after = abort_after or {}
    clients = [
        _Client(script, collect, abort_after.get(script.session_id))
        for script in scripts
    ]
    t0 = time.perf_counter_ns()
    for client in clients:
        sock = socket.socket()
        sock.setblocking(False)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.connect_ex((host, port))
        client.sock = sock
        client.mask = selectors.EVENT_READ
        sel.register(sock, client.mask, client)
        _send(sel, client, frame(protocol.encode_json(client.script.hello)))
    active = sum(1 for c in clients if c.state != "done")
    deadline = time.monotonic() + timeout_s
    while active:
        if time.monotonic() > deadline:
            raise TimeoutError(f"load run stalled with {active} clients active")
        for key, mask in sel.select(timeout=1.0):
            client = key.data
            if client.state == "done":
                continue
            if mask & selectors.EVENT_WRITE:
                _flush(sel, client)
            if mask & selectors.EVENT_READ:
                _drain_socket(sel, client)
            if client.state == "done":
                active -= 1
    wall_s = (time.perf_counter_ns() - t0) / 1e9
    return LoadgenResult.aggregate(clients, wall_s)


def _run_load_forked(
    port: int,
    scripts: list[ClientScript],
    *,
    host: str,
    collect: bool,
    abort_after: dict[str, int] | None,
    timeout_s: float,
    processes: int,
) -> "LoadgenResult":
    slices = [scripts[i::processes] for i in range(processes)]
    t0 = time.perf_counter_ns()
    children: list[tuple[int, int]] = []
    for chunk in slices:
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            os.close(read_fd)
            status = 0
            try:
                result = run_load(
                    port,
                    chunk,
                    host=host,
                    collect=collect,
                    abort_after=abort_after,
                    timeout_s=timeout_s,
                )
                with os.fdopen(write_fd, "wb") as fh:
                    fh.write(pickle.dumps(result))
            except BaseException:
                status = 1
                with contextlib.suppress(OSError):
                    os.close(write_fd)
            os._exit(status)
        os.close(write_fd)
        children.append((pid, read_fd))
    parts: list[LoadgenResult] = []
    failures = 0
    for pid, read_fd in children:
        with os.fdopen(read_fd, "rb") as fh:
            blob = fh.read()
        _, status = os.waitpid(pid, 0)
        if os.waitstatus_to_exitcode(status) != 0 or not blob:
            failures += 1
            continue
        parts.append(pickle.loads(blob))
    wall_s = (time.perf_counter_ns() - t0) / 1e9
    if failures:
        raise RuntimeError(f"{failures} load generator worker(s) crashed")
    return LoadgenResult.merge(parts, wall_s)


def _set_mask(sel, client, mask) -> None:
    if mask != client.mask:
        client.mask = mask
        sel.modify(client.sock, mask, client)


def _finish(sel, client, error: str | None = None) -> None:
    if client.state == "done":
        return
    client.state = "done"
    client.error = error
    try:
        sel.unregister(client.sock)
    except KeyError:
        pass
    client.sock.close()


def _send(sel, client, data: bytes) -> None:
    client.outbuf += data
    _flush(sel, client)


def _flush(sel, client) -> None:
    while client.outbuf:
        try:
            sent = client.sock.send(client.outbuf)
        except (BlockingIOError, InterruptedError):
            break
        except OSError as exc:
            _finish(sel, client, f"send failed: {exc}")
            return
        client.outbuf = client.outbuf[sent:]
    want = selectors.EVENT_READ
    if client.outbuf:
        want |= selectors.EVENT_WRITE
    _set_mask(sel, client, want)


def _send_step(sel, client) -> None:
    script = client.script
    buf, tick_off = script.steps[client.step]
    client.observed = script.observed_mbps[client.step]
    ABR_PATCH.pack_into(
        buf,
        tick_off + ABR_PATCH_OFFSET,
        client.observed,
        client.buffer_s,
        client.last_level,
    )
    client.t_send = time.perf_counter_ns()
    _send(sel, client, bytes(buf))


def _drain_socket(sel, client) -> None:
    try:
        data = client.sock.recv(1 << 16)
    except (BlockingIOError, InterruptedError):
        return
    except OSError as exc:
        _finish(sel, client, f"recv failed: {exc}")
        return
    if not data:
        _finish(sel, client, "server closed the connection")
        return
    try:
        frames = client.decoder.feed(data)
    except protocol.FrameError as exc:
        _finish(sel, client, f"bad frame from server: {exc}")
        return
    for payload in frames:
        _handle_frame(sel, client, payload)
        if client.state == "done":
            return


def _handle_frame(sel, client, payload: bytes) -> None:
    tag = payload[:1]
    if tag == b"{":
        message = protocol.decode_json(payload)
        kind = message.get("type")
        if kind == "welcome" and client.state == "hello":
            client.state = "run"
            if client.script.n_ticks == 0:
                client.state = "bye"
                _send(sel, client, frame(b"B"))
            else:
                _send_step(sel, client)
        elif kind == "bye":
            client.bye = message
            _finish(sel, client)
        elif kind == "error":
            _finish(sel, client, f"server error: {message.get('error')}")
        else:
            _finish(sel, client, f"unexpected control frame {kind!r}")
        return
    if tag != b"P" or client.state != "run":
        _finish(sel, client, f"unexpected frame tag {tag!r} in state {client.state}")
        return
    client.latencies_ns.append(time.perf_counter_ns() - client.t_send)
    time_s, ho_type, score, similarity, lead, level, dropped = (
        protocol.decode_prediction(payload)
    )
    if client.collect:
        client.predictions.append((time_s, ho_type, score, similarity, lead, level))
    if level >= 0:
        # Deterministic playout-buffer evolution: download the chosen
        # chunk at the observed rate, then play one chunk.
        rate = max(client.observed, 0.1)
        download_s = client.script.levels_mbps[level] * client.script.chunk_s / rate
        client.buffer_s = min(
            max(client.buffer_s - download_s, 0.0) + client.script.chunk_s,
            MAX_BUFFER_S,
        )
        client.last_level = level
    client.step += 1
    if client.abort_after is not None and client.step >= client.abort_after:
        # Fault injection: vanish mid-stream, no goodbye.
        _finish(sel, client, "aborted (injected)")
        return
    if client.step >= client.script.n_ticks:
        client.state = "bye"
        _send(sel, client, frame(b"B"))
    else:
        _send_step(sel, client)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


@dataclass
class LoadgenResult:
    """Aggregate of one closed-loop run."""

    sessions: int
    completed: int
    aborted: int
    failed: int
    ticks: int
    wall_s: float
    sessions_per_s: float
    ticks_per_s: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    byes: dict = field(default_factory=dict)
    predictions: dict = field(default_factory=dict)
    errors: dict = field(default_factory=dict)
    #: Raw per-tick latencies, kept so merging per-process results
    #: (:meth:`merge`) recomputes percentiles exactly.
    latencies_ns: list = field(default_factory=list, repr=False)

    @classmethod
    def aggregate(cls, clients: list[_Client], wall_s: float) -> "LoadgenResult":
        raw = [ns for c in clients for ns in c.latencies_ns]
        latencies = np.array(raw, dtype=float)
        ticks = int(latencies.size)
        if ticks:
            p50, p99, p999 = np.percentile(latencies, [50.0, 99.0, 99.9]) / 1e6
        else:
            p50 = p99 = p999 = float("nan")
        completed = sum(1 for c in clients if c.bye is not None)
        aborted = sum(1 for c in clients if c.error and c.error.startswith("aborted"))
        failed = sum(
            1
            for c in clients
            if c.bye is None and not (c.error and c.error.startswith("aborted"))
        )
        return cls(
            sessions=len(clients),
            completed=completed,
            aborted=aborted,
            failed=failed,
            ticks=ticks,
            wall_s=wall_s,
            sessions_per_s=completed / wall_s if wall_s > 0 else 0.0,
            ticks_per_s=ticks / wall_s if wall_s > 0 else 0.0,
            p50_ms=float(p50),
            p99_ms=float(p99),
            p999_ms=float(p999),
            byes={c.script.session_id: c.bye for c in clients if c.bye is not None},
            predictions={
                c.script.session_id: c.predictions for c in clients if c.collect
            },
            errors={c.script.session_id: c.error for c in clients if c.error},
            latencies_ns=raw,
        )

    @classmethod
    def merge(cls, parts: list["LoadgenResult"], wall_s: float) -> "LoadgenResult":
        """Combine per-process results under the parent's wall clock."""
        raw = [ns for p in parts for ns in p.latencies_ns]
        latencies = np.array(raw, dtype=float)
        ticks = int(latencies.size)
        if ticks:
            p50, p99, p999 = np.percentile(latencies, [50.0, 99.0, 99.9]) / 1e6
        else:
            p50 = p99 = p999 = float("nan")
        completed = sum(p.completed for p in parts)
        byes: dict = {}
        predictions: dict = {}
        errors: dict = {}
        for part in parts:
            byes.update(part.byes)
            predictions.update(part.predictions)
            errors.update(part.errors)
        return cls(
            sessions=sum(p.sessions for p in parts),
            completed=completed,
            aborted=sum(p.aborted for p in parts),
            failed=sum(p.failed for p in parts),
            ticks=ticks,
            wall_s=wall_s,
            sessions_per_s=completed / wall_s if wall_s > 0 else 0.0,
            ticks_per_s=ticks / wall_s if wall_s > 0 else 0.0,
            p50_ms=float(p50),
            p99_ms=float(p99),
            p999_ms=float(p999),
            byes=byes,
            predictions=predictions,
            errors=errors,
            latencies_ns=raw,
        )

    def summary(self) -> dict:
        return {
            "sessions": self.sessions,
            "completed": self.completed,
            "aborted": self.aborted,
            "failed": self.failed,
            "ticks": self.ticks,
            "wall_s": round(self.wall_s, 3),
            "sessions_per_s": round(self.sessions_per_s, 3),
            "ticks_per_s": round(self.ticks_per_s, 1),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "p999_ms": round(self.p999_ms, 3),
        }


# ----------------------------------------------------------------------
# Forked serving daemon (benches, tests, CI smoke)
# ----------------------------------------------------------------------


async def _serve_until_sigterm(config: ServerConfig, write_fd: int) -> None:
    server = make_server(config)
    await server.start()
    os.write(write_fd, f"{server.port}\n".encode())
    os.close(write_fd)
    stop = asyncio.Event()
    asyncio.get_running_loop().add_signal_handler(signal.SIGTERM, stop.set)
    await stop.wait()
    await server.shutdown()


def spawn_server(config: ServerConfig) -> tuple[int, int]:
    """Fork a serving daemon; returns ``(pid, port)`` once it listens.

    When ``config`` resolves to more than one shard
    (:func:`repro.serve.shard.resolve_shards`) the daemon is the
    sharded controller and the returned pid is the controller's — its
    engine workers are the controller's own children and die with it.
    """
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        os.close(read_fd)
        status = 0
        try:
            asyncio.run(_serve_until_sigterm(config, write_fd))
        except BaseException:
            status = 1
        os._exit(status)
    os.close(write_fd)
    with os.fdopen(read_fd) as fh:
        line = fh.readline().strip()
    if not line:
        with contextlib.suppress(ChildProcessError):
            reap_process(pid, timeout_s=5.0)
        raise RuntimeError("server child died before listening")
    return pid, int(line)


def stop_server(pid: int, *, timeout_s: float = 15.0) -> int:
    """SIGTERM the daemon and reap it; returns its exit code.

    Escalates to SIGKILL after ``timeout_s`` so a daemon wedged in
    shutdown — or orphaned by a client that died mid-handshake and left
    a connection half-routed — can never leak past the caller.
    """
    return reap_process(pid, term=True, timeout_s=timeout_s)


# ----------------------------------------------------------------------
# CLI (the CI serving smoke)
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Spawn a Prognos server and drive simulated UE sessions at it."
    )
    parser.add_argument("--sessions", type=int, default=4)
    parser.add_argument("--drives", type=int, default=2)
    parser.add_argument("--length-km", type=float, default=0.6)
    parser.add_argument("--max-ticks", type=int, default=None)
    parser.add_argument(
        "--mode", choices=("batched", "sequential"), default="batched"
    )
    parser.add_argument("--seed", type=int, default=101)
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="engine shard processes (default: REPRO_SERVE_SHARDS / cpus-1)",
    )
    parser.add_argument(
        "--routing", choices=("auto", "reuseport", "handoff"), default="auto"
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        help="load generator worker processes",
    )
    args = parser.parse_args(argv)

    from repro.radio.bands import BandClass
    from repro.ran import OPX
    from repro.simulate.runner import run_drives
    from repro.simulate.scenarios import freeway_scenario

    logs = run_drives(
        [
            freeway_scenario(
                OPX, BandClass.LOW, length_km=args.length_km, seed=args.seed + i
            )
            for i in range(args.drives)
        ]
    )
    configs = configs_for_log(OPX, (BandClass.LOW,))
    scripts = [
        build_script(
            logs[i % len(logs)],
            f"ue-{i:04d}",
            configs,
            max_ticks=args.max_ticks,
        )
        for i in range(args.sessions)
    ]
    config = ServerConfig(
        batched=args.mode == "batched", shards=args.shards, routing=args.routing
    )
    pid, port = spawn_server(config)
    try:
        result = run_load(port, scripts, processes=args.processes)
    finally:
        exit_code = stop_server(pid)
    summary = result.summary()
    summary["mode"] = args.mode
    summary["shards"] = resolve_shards(config)
    summary["server_exit"] = exit_code
    print(json.dumps(summary, indent=2))
    if exit_code != 0:
        print("server did not shut down cleanly", file=sys.stderr)
        return 1
    if result.failed or result.completed != args.sessions:
        print("not all sessions completed cleanly", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
