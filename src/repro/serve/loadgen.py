"""Closed-loop load generator: corpus-driven clients for the server.

Each simulated UE replays one drive's measurement stream over a real
TCP connection, window-1 closed loop: send the tick, wait for the
prediction, advance. The per-tick latency (send → prediction) and the
end-to-end wall time therefore measure the server's whole serving path
under concurrency — protocol, batching, model, backpressure — not a
synthetic kernel.

Scripts are pre-encoded once per drive
(:func:`build_script` reuses the offline evaluator's replay plan, so
reports and commands interleave with ticks in exactly the order
:func:`~repro.core.evaluation.run_prognos_over_logs` drains them); per
send only the three ABR feedback fields are patched in place
(:data:`~repro.serve.protocol.ABR_PATCH`), keeping client-side CPU out
of the measurement as far as possible. The client's buffer model is
deterministic, so two runs over the same scripts (e.g. the bench's
sequential vs micro-batched servers) present byte-identical inputs.

Clients run on a ``selectors`` loop — ``run_load``, optionally forked
across ``processes`` worker processes so a single generator core can't
bottleneck a multi-shard server under test — and the helpers
:func:`spawn_server` / :func:`stop_server` fork a serving daemon
(sharded when the config resolves to more than one engine process) for
benches, tests, and the CI smoke CLI (``python -m repro.serve.loadgen``).

**Resumption and chaos.** With ``resume=True`` a client that loses its
connection (reset, eviction, drain bye, injected fault) reconnects
with its resume token and last-seen prediction sequence; the server
replays the missed tail and the client's deterministic buffer model
picks up exactly where it left off, so the merged per-session stream
still equals the offline oracle. A resume refusal (state lost — e.g. a
SIGKILLed shard, or the replay journal overflowed) restarts the drive
from scratch, which converges to the same stream. ``chaos=True``
additionally fires the :mod:`repro.robust.faults` network family
(``conn_reset``/``frame_truncate``/``byte_corrupt``/``stall_s``/
``reconnect_storm``) from ``REPRO_FAULTS`` before sends, keyed
``session@step`` with the reconnect count as the attempt — the same
sha256 draw as every other fault hook, so a chaos run reproduces
exactly.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import pickle
import selectors
import signal
import socket
import struct
import sys
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.evaluation import _replay_plan, configs_for_log
from repro.robust import faults
from repro.robust.supervisor import reap_process
from repro.serve import protocol
from repro.serve.protocol import ABR_PATCH, ABR_PATCH_OFFSET, FrameDecoder, frame
from repro.serve.server import ServerConfig
from repro.serve.shard import make_server, resolve_shards

#: A DASH-style ladder spanning the simulated capacity range (Mbps).
DEFAULT_LEVELS_MBPS = [3.0, 7.5, 12.0, 18.5, 28.5, 43.0]
DEFAULT_CHUNK_S = 4.0
#: Client-side playout buffer model.
START_BUFFER_S = 8.0
MAX_BUFFER_S = 30.0
#: Hard ceiling on reconnect attempts per client (beyond the drive
#: length) before the session is counted failed.
RECONNECT_SLACK = 64
#: Hard ceiling on busy/shed retries per client.
SHED_RETRY_CAP = 200

_LINGER_RST = struct.pack("ii", 1, 0)


# ----------------------------------------------------------------------
# Script building
# ----------------------------------------------------------------------


@dataclass
class ClientScript:
    """One session's pre-encoded frame sequence."""

    session_id: str
    hello: dict
    #: Per tick: (buffer holding any due event frames + the tick frame,
    #: byte offset of the tick frame within the buffer).
    steps: list[tuple[bytearray, int]]
    #: Per tick: the observed throughput fed back on the next tick.
    observed_mbps: list[float]
    levels_mbps: list[float]
    chunk_s: float

    @property
    def n_ticks(self) -> int:
        return len(self.steps)


def build_script(
    log,
    session_id: str,
    event_configs,
    *,
    wants_abr: bool = True,
    levels_mbps: list[float] | None = None,
    chunk_s: float = DEFAULT_CHUNK_S,
    policy: str = "drop",
    standalone: bool = False,
    max_ticks: int | None = None,
) -> ClientScript:
    """Pre-encode one drive as a client session.

    The replay plan is the offline evaluator's own, so the server-side
    event drain order — and therefore the prediction stream — matches
    :func:`~repro.core.evaluation.run_prognos_over_logs` over the same
    single drive. Every frame carries its protocol-v2 sequence number,
    fixed at build time: a resume resend replays the same bytes and the
    server's duplicate filter keeps the application effects exactly
    once.
    """
    plan = _replay_plan(log, 1.0, 1)
    capacities = [t.total_capacity_mbps for t in log.ticks]
    levels = list(levels_mbps or DEFAULT_LEVELS_MBPS)
    steps: list[tuple[bytearray, int]] = []
    observed: list[float] = []
    e_idx = 0
    events = plan.events
    n = len(plan.step_times)
    if max_ticks is not None:
        n = min(n, max_ticks)
    seq = 0
    for pos in range(n):
        now = plan.step_times[pos]
        parts = bytearray()
        while e_idx < len(events) and events[e_idx][0] <= pos:
            _, kind, payload, event_time = events[e_idx]
            seq += 1
            if kind == 0:
                parts += frame(protocol.encode_report(payload, event_time, seq=seq))
            else:
                parts += frame(protocol.encode_command(payload, event_time, seq=seq))
            e_idx += 1
        tick_off = len(parts)
        rsrp, serving, neighbours, scoped = plan.step_inputs[pos]
        seq += 1
        parts += frame(
            protocol.encode_tick(
                now,
                rsrp,
                serving,
                neighbours,
                scoped,
                wants_abr=wants_abr,
                observed_mbps=0.0,
                buffer_s=0.0,
                last_level=0,
                seq=seq,
            )
        )
        steps.append((parts, tick_off))
        observed.append(float(capacities[pos]))
    hello = {
        "type": "hello",
        "version": protocol.PROTOCOL_VERSION,
        "session": session_id,
        "standalone": standalone,
        "policy": policy,
        "events": protocol.encode_event_configs(event_configs),
    }
    if wants_abr:
        hello["abr"] = {"levels_mbps": levels, "chunk_s": chunk_s}
    return ClientScript(session_id, hello, steps, observed, levels, chunk_s)


# ----------------------------------------------------------------------
# The selectors client engine
# ----------------------------------------------------------------------


class _Client:
    __slots__ = (
        "script",
        "host",
        "port",
        "sock",
        "decoder",
        "step",
        "buffer_s",
        "last_level",
        "observed",
        "t_send",
        "latencies_ns",
        "predictions",
        "collect",
        "abort_after",
        "outbuf",
        "state",
        "bye",
        "error",
        "mask",
        # Resumption / chaos.
        "resume_enabled",
        "chaos",
        "token",
        "last_seq",
        "replay_high",
        "reconnects",
        "resumes",
        "restarts",
        "shed",
        "resets",
        "storm_left",
        "connect_fails",
        "wait_until",
        "wait_action",
        "resume_t0",
        "resume_latencies_ns",
    )

    def __init__(
        self,
        script: ClientScript,
        collect: bool,
        abort_after: int | None,
        *,
        host: str,
        port: int,
        resume: bool = False,
        chaos: bool = False,
    ):
        self.script = script
        self.host = host
        self.port = port
        self.sock: socket.socket | None = None
        self.decoder = FrameDecoder()
        self.step = 0
        self.buffer_s = START_BUFFER_S
        self.last_level = 0
        self.observed = 0.0
        self.t_send = 0
        self.latencies_ns: list[int] = []
        self.predictions: list[tuple] = []
        self.collect = collect
        self.abort_after = abort_after
        self.outbuf = b""
        self.state = "hello"
        self.bye: dict | None = None
        self.error: str | None = None
        self.mask = 0
        self.resume_enabled = resume
        self.chaos = chaos
        self.token: str | None = None
        #: Last prediction sequence processed (== drive steps finished).
        self.last_seq = 0
        #: Server's out_seq at the last resume welcome; predictions up
        #: to here are journal replays, not fresh round trips.
        self.replay_high = 0
        self.reconnects = 0
        self.resumes = 0
        self.restarts = 0
        self.shed = 0
        self.resets = 0
        self.storm_left = 0
        self.connect_fails = 0
        self.wait_until: float | None = None
        self.wait_action: str | None = None
        self.resume_t0 = 0
        self.resume_latencies_ns: list[int] = []


def run_load(
    port: int,
    scripts: list[ClientScript],
    *,
    host: str = "127.0.0.1",
    collect: bool = False,
    abort_after: dict[str, int] | None = None,
    timeout_s: float = 600.0,
    processes: int = 1,
    resume: bool | None = None,
    chaos: bool = False,
) -> "LoadgenResult":
    """Drive every script to completion against a running server.

    With ``processes > 1`` the scripts are struck round-robin across
    that many forked generator processes (each its own ``selectors``
    loop and core) and the per-process results are merged — raw
    latencies included, so percentiles stay exact. Required to
    saturate a multi-shard server: one generator process is itself a
    single-core closed loop.

    ``resume=True`` makes disconnected clients resume their sessions
    instead of failing (default on when ``chaos`` is set); ``chaos``
    additionally fires the ``REPRO_FAULTS`` network family per send.
    Connection-level errors never propagate out of the loop either
    way: without resumption they are counted session outcomes.
    """
    if resume is None:
        resume = chaos
    if processes > 1 and len(scripts) > 1:
        return _run_load_forked(
            port,
            scripts,
            host=host,
            collect=collect,
            abort_after=abort_after,
            timeout_s=timeout_s,
            processes=min(processes, len(scripts)),
            resume=resume,
            chaos=chaos,
        )
    sel = selectors.DefaultSelector()
    abort_after = abort_after or {}
    clients = [
        _Client(
            script,
            collect,
            abort_after.get(script.session_id),
            host=host,
            port=port,
            resume=resume,
            chaos=chaos,
        )
        for script in scripts
    ]
    t0 = time.perf_counter_ns()
    for client in clients:
        _open_socket(sel, client)
        _send(sel, client, frame(protocol.encode_json(client.script.hello)))
    deadline = time.monotonic() + timeout_s
    while True:
        active = sum(1 for c in clients if c.state != "done")
        if not active:
            break
        now = time.monotonic()
        if now > deadline:
            raise TimeoutError(f"load run stalled with {active} clients active")
        timeout = 0.5
        for client in clients:
            if client.state != "done" and client.wait_until is not None:
                timeout = min(timeout, max(0.0, client.wait_until - now))
        for key, mask in sel.select(timeout=timeout):
            client = key.data
            if client.state == "done":
                continue
            try:
                if mask & selectors.EVENT_WRITE:
                    _flush(sel, client)
                if mask & selectors.EVENT_READ:
                    _drain_socket(sel, client)
            except OSError as exc:
                # Belt and braces: no connection-level error may abort
                # the whole run; it is this one session's outcome.
                _on_disconnect(sel, client, f"socket error: {exc}")
        now = time.monotonic()
        for client in clients:
            if (
                client.state != "done"
                and client.wait_until is not None
                and now >= client.wait_until
            ):
                _fire_timer(sel, client)
    wall_s = (time.perf_counter_ns() - t0) / 1e9
    return LoadgenResult.aggregate(clients, wall_s)


def _run_load_forked(
    port: int,
    scripts: list[ClientScript],
    *,
    host: str,
    collect: bool,
    abort_after: dict[str, int] | None,
    timeout_s: float,
    processes: int,
    resume: bool = False,
    chaos: bool = False,
) -> "LoadgenResult":
    slices = [scripts[i::processes] for i in range(processes)]
    t0 = time.perf_counter_ns()
    children: list[tuple[int, int]] = []
    for chunk in slices:
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            os.close(read_fd)
            status = 0
            try:
                result = run_load(
                    port,
                    chunk,
                    host=host,
                    collect=collect,
                    abort_after=abort_after,
                    timeout_s=timeout_s,
                    resume=resume,
                    chaos=chaos,
                )
                with os.fdopen(write_fd, "wb") as fh:
                    fh.write(pickle.dumps(result))
            except BaseException:
                status = 1
                with contextlib.suppress(OSError):
                    os.close(write_fd)
            os._exit(status)
        os.close(write_fd)
        children.append((pid, read_fd))
    parts: list[LoadgenResult] = []
    failures = 0
    for pid, read_fd in children:
        with os.fdopen(read_fd, "rb") as fh:
            blob = fh.read()
        _, status = os.waitpid(pid, 0)
        if os.waitstatus_to_exitcode(status) != 0 or not blob:
            failures += 1
            continue
        parts.append(pickle.loads(blob))
    wall_s = (time.perf_counter_ns() - t0) / 1e9
    if failures:
        raise RuntimeError(f"{failures} load generator worker(s) crashed")
    return LoadgenResult.merge(parts, wall_s)


def _set_mask(sel, client, mask) -> None:
    if mask != client.mask:
        client.mask = mask
        sel.modify(client.sock, mask, client)


def _open_socket(sel, client) -> None:
    sock = socket.socket()
    sock.setblocking(False)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sock.connect_ex((client.host, client.port))
    client.sock = sock
    client.decoder = FrameDecoder()
    client.outbuf = b""
    client.mask = selectors.EVENT_READ
    sel.register(sock, client.mask, client)


def _close_socket(sel, client, *, hard: bool = False) -> None:
    sock = client.sock
    if sock is None:
        return
    client.sock = None
    with contextlib.suppress(KeyError):
        sel.unregister(sock)
    if hard:
        # RST instead of FIN: the realistic shape of a dying client.
        with contextlib.suppress(OSError):
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER, _LINGER_RST)
    sock.close()
    client.outbuf = b""


def _finish(sel, client, error: str | None = None) -> None:
    if client.state == "done":
        return
    client.state = "done"
    client.error = error
    client.wait_until = None
    _close_socket(sel, client)


def _send(sel, client, data: bytes) -> None:
    client.outbuf += data
    _flush(sel, client)


def _flush(sel, client) -> None:
    while client.outbuf:
        try:
            sent = client.sock.send(client.outbuf)
        except (BlockingIOError, InterruptedError):
            break
        except OSError as exc:
            _on_disconnect(sel, client, f"send failed: {exc}")
            return
        client.outbuf = client.outbuf[sent:]
    want = selectors.EVENT_READ
    if client.outbuf:
        want |= selectors.EVENT_WRITE
    _set_mask(sel, client, want)


# ----------------------------------------------------------------------
# Resumption plumbing
# ----------------------------------------------------------------------


def _reconnect_cap(client) -> int:
    # Generous: every busy shed retry and injected fault burns one
    # attempt, and only a genuinely dead server should exhaust it.
    return 4 * client.script.n_ticks + RECONNECT_SLACK + SHED_RETRY_CAP


def _backoff_s(client) -> float:
    return min(0.02 * (2 ** min(client.connect_fails, 5)), 0.5)


def _on_disconnect(sel, client, why: str) -> None:
    """Connection lost — resume when enabled, else a counted outcome."""
    if client.state == "done":
        return
    client.resets += 1
    was = client.state
    stalling = client.wait_until is not None and client.wait_action == "send_step"
    _close_socket(sel, client)
    if not client.resume_enabled:
        _finish(sel, client, why)
        return
    if client.reconnects >= _reconnect_cap(client):
        _finish(sel, client, f"reconnect cap exhausted after: {why}")
        return
    if was in ("hello", "resume") or client.token is None:
        # Handshake lost (e.g. a shard mid-refork refusing connects):
        # retry the same handshake with exponential backoff so a brief
        # dead window cannot burn through the reconnect cap.
        client.reconnects += 1
        client.connect_fails += 1
        client.state = "wait"
        _schedule(client, _backoff_s(client), "resume" if was == "resume" else "hello")
        return
    if stalling:
        # Mid-stall: keep stalling, resume when the timer fires (the
        # resume welcome will resend the pending step).
        client.wait_action = "resume"
        return
    _start_resume(sel, client)


def _start_resume(sel, client) -> None:
    client.state = "resume"
    client.reconnects += 1
    client.resume_t0 = time.perf_counter_ns()
    _open_socket(sel, client)
    _send(
        sel,
        client,
        frame(
            protocol.encode_json(
                {
                    "type": "resume",
                    "version": protocol.PROTOCOL_VERSION,
                    "session": client.script.session_id,
                    "token": client.token,
                    "seq": client.last_seq,
                }
            )
        ),
    )


def _restart(sel, client) -> None:
    """The server lost the session: replay the whole drive from zero.

    Deterministic scripts and a fresh server-side session make the
    rerun byte-identical, so the final collected stream still matches
    the offline oracle.
    """
    if client.reconnects >= _reconnect_cap(client):
        _finish(sel, client, "reconnect cap exhausted on restart")
        return
    client.restarts += 1
    client.reconnects += 1
    client.token = None
    client.step = 0
    client.last_seq = 0
    client.replay_high = 0
    client.storm_left = 0
    client.buffer_s = START_BUFFER_S
    client.last_level = 0
    client.predictions = []
    _close_socket(sel, client)
    client.state = "hello"
    _open_socket(sel, client)
    _send(sel, client, frame(protocol.encode_json(client.script.hello)))


def _schedule(client, delay_s: float, action: str) -> None:
    client.wait_until = time.monotonic() + max(0.0, delay_s)
    client.wait_action = action


def _fire_timer(sel, client) -> None:
    action, client.wait_action = client.wait_action, None
    client.wait_until = None
    if action == "send_step":
        client.state = "run"
        if client.sock is None:
            # The server dropped us mid-stall (dead-peer eviction).
            _start_resume(sel, client)
        else:
            _send_step(sel, client, skip_fault=True)
    elif action == "resume":
        _start_resume(sel, client)
    elif action == "hello":
        client.state = "hello"
        _open_socket(sel, client)
        _send(sel, client, frame(protocol.encode_json(client.script.hello)))


def _drop_and_resume(sel, client, *, hard: bool) -> None:
    client.resets += 1
    _close_socket(sel, client, hard=hard)
    if client.reconnects >= _reconnect_cap(client):
        _finish(sel, client, "reconnect cap exhausted (injected faults)")
        return
    _start_resume(sel, client)


# ----------------------------------------------------------------------
# Chaos fault actions
# ----------------------------------------------------------------------


def _apply_fault(sel, client, spec) -> bool:
    """Act out one fired network fault; True when the send is replaced."""
    name = spec.name
    script = client.script
    if name == "conn_reset":
        _drop_and_resume(sel, client, hard=True)
        return True
    if name == "frame_truncate":
        buf, tick_off = script.steps[client.step]
        # A prefix ending inside the tick frame's length/header: the
        # server's framer can never complete it.
        prefix = bytes(buf[: tick_off + 6])
        if prefix:
            with contextlib.suppress(OSError):
                client.sock.send(prefix)
        _drop_and_resume(sel, client, hard=True)
        return True
    if name == "byte_corrupt":
        buf, tick_off = script.steps[client.step]
        client.observed = script.observed_mbps[client.step]
        corrupt = bytearray(buf)
        ABR_PATCH.pack_into(
            corrupt,
            tick_off + ABR_PATCH_OFFSET,
            client.observed,
            client.buffer_s,
            client.last_level,
        )
        # Flip the tick frame's tag bit: guaranteed server-side
        # rejection, and no payload byte is touched, so the eventual
        # resumed stream stays bit-comparable to the oracle.
        corrupt[tick_off + 4] ^= 0x80
        client.t_send = time.perf_counter_ns()
        _send(sel, client, bytes(corrupt))
        # The server answers with an error frame and closes; the
        # disconnect path resumes and resends the step intact.
        return True
    if name == "stall_s":
        # Go silent mid-drive; long stalls trip dead-peer eviction.
        client.state = "wait"
        _schedule(client, spec.hang_s, "send_step")
        return True
    if name == "reconnect_storm":
        client.storm_left = 2
        _drop_and_resume(sel, client, hard=False)
        return True
    return False


def _send_step(sel, client, *, skip_fault: bool = False) -> None:
    script = client.script
    if client.chaos and not skip_fault:
        spec = faults.maybe_network_fault(
            f"{script.session_id}@{client.step}", attempt=client.reconnects
        )
        if spec is not None and _apply_fault(sel, client, spec):
            return
    buf, tick_off = script.steps[client.step]
    client.observed = script.observed_mbps[client.step]
    ABR_PATCH.pack_into(
        buf,
        tick_off + ABR_PATCH_OFFSET,
        client.observed,
        client.buffer_s,
        client.last_level,
    )
    client.t_send = time.perf_counter_ns()
    _send(sel, client, bytes(buf))


def _drain_socket(sel, client) -> None:
    # Pin the socket: a handled frame may reconnect the client, and
    # any frames still queued from the old connection must be dropped
    # with it, not replayed into the new one.
    sock = client.sock
    while client.sock is sock and client.state != "done":
        try:
            data = sock.recv(1 << 16)
        except (BlockingIOError, InterruptedError):
            return
        except OSError as exc:
            _on_disconnect(sel, client, f"recv failed: {exc}")
            return
        if not data:
            _on_disconnect(sel, client, "server closed the connection")
            return
        try:
            frames = client.decoder.feed(data)
        except protocol.FrameError as exc:
            _on_disconnect(sel, client, f"bad frame from server: {exc}")
            return
        for payload in frames:
            _handle_frame(sel, client, payload)
            if client.state == "done" or client.sock is not sock:
                return
        if len(data) < (1 << 16):
            return


def _handle_welcome(sel, client, message: dict) -> None:
    resumed = client.state == "resume"
    client.token = message.get("resume") or client.token
    client.connect_fails = 0
    client.state = "run"
    if not resumed:
        if client.script.n_ticks == 0:
            client.state = "bye"
            _send(sel, client, frame(b"B"))
        else:
            _send_step(sel, client)
        return
    client.resumes += 1
    client.resume_latencies_ns.append(
        time.perf_counter_ns() - client.resume_t0
    )
    if client.storm_left > 0:
        client.storm_left -= 1
        _drop_and_resume(sel, client, hard=False)
        return
    server_seq = message.get("seq")
    client.replay_high = server_seq if isinstance(server_seq, int) else 0
    if client.replay_high == client.last_seq:
        # No tail to replay. Resend the in-flight step — duplicates are
        # filtered server-side, so this is the liveness kick, not a
        # correctness risk (the answer may come from the engine backlog).
        if client.last_seq >= client.script.n_ticks:
            client.state = "bye"
            _send(sel, client, frame(b"B"))
        else:
            client.step = client.last_seq
            _send_step(sel, client, skip_fault=True)
    # Else: replayed predictions are already in flight; the prediction
    # handler resumes sending when the tail ends.


def _handle_control(sel, client, message: dict) -> None:
    kind = message.get("type")
    if kind == "welcome" and client.state in ("hello", "resume"):
        _handle_welcome(sel, client, message)
    elif kind == "busy":
        client.shed += 1
        if client.shed > SHED_RETRY_CAP:
            _finish(sel, client, "shed retry cap exhausted")
            return
        retry_after = message.get("retry_after")
        delay = float(retry_after) if isinstance(retry_after, (int, float)) else 0.2
        resuming = client.state == "resume"
        _close_socket(sel, client)
        client.state = "wait"
        _schedule(client, delay, "resume" if resuming else "hello")
    elif kind == "bye":
        reason = message.get("reason")
        if reason in ("drain", "dead_peer") and client.resume_enabled:
            # Server-initiated close mid-drive; the token in the bye is
            # our ticket back in. The disconnect path (EOF follows)
            # performs the resume.
            client.token = message.get("resume") or client.token
            return
        client.bye = message
        _finish(sel, client)
    elif kind == "error":
        if client.resume_enabled and client.state == "resume":
            # Resume refused: the session state is gone (shard SIGKILL,
            # journal overflow). Start the drive over.
            _restart(sel, client)
        elif client.resume_enabled and client.state in ("run", "wait"):
            # Mid-stream rejection (e.g. an injected corrupt frame):
            # the server drops us; reconnect and resume.
            _on_disconnect(sel, client, f"server error: {message.get('error')}")
        else:
            _finish(sel, client, f"server error: {message.get('error')}")
    else:
        _finish(sel, client, f"unexpected control frame {kind!r}")


def _handle_frame(sel, client, payload: bytes) -> None:
    tag = payload[:1]
    if tag == b"{":
        _handle_control(sel, client, protocol.decode_json(payload))
        return
    if tag == b"H":
        # Heartbeat ping. A stalling client stays silent on purpose —
        # that is exactly the wedged peer the server must evict.
        if client.state == "run":
            _send(sel, client, frame(b"H"))
        return
    if tag != b"P" or client.state not in ("run", "wait"):
        _finish(sel, client, f"unexpected frame tag {tag!r} in state {client.state}")
        return
    t_recv = time.perf_counter_ns()
    time_s, ho_type, score, similarity, lead, level, dropped, seq = (
        protocol.decode_prediction(payload)
    )
    if seq <= client.last_seq:
        return  # stale duplicate; already applied
    replaying = seq <= client.replay_high
    if not replaying:
        client.latencies_ns.append(t_recv - client.t_send)
    client.last_seq = seq
    if client.collect:
        client.predictions.append((time_s, ho_type, score, similarity, lead, level))
    if level >= 0:
        # Deterministic playout-buffer evolution: download the chosen
        # chunk at the rate observed for that step, then play one
        # chunk. Indexing by sequence (not a mutable "current observed")
        # keeps the evolution identical across resumes and replays.
        rate = max(client.script.observed_mbps[seq - 1], 0.1)
        download_s = client.script.levels_mbps[level] * client.script.chunk_s / rate
        client.buffer_s = min(
            max(client.buffer_s - download_s, 0.0) + client.script.chunk_s,
            MAX_BUFFER_S,
        )
        client.last_level = level
    client.step = seq
    if client.abort_after is not None and client.step >= client.abort_after:
        # Fault injection: vanish mid-stream, no goodbye.
        _finish(sel, client, "aborted (injected)")
        return
    if replaying and seq < client.replay_high:
        return  # more of the journal tail is in flight
    if client.state == "wait":
        return  # stalled; the timer resumes sending
    if client.step >= client.script.n_ticks:
        client.state = "bye"
        _send(sel, client, frame(b"B"))
    else:
        _send_step(sel, client, skip_fault=replaying)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


@dataclass
class LoadgenResult:
    """Aggregate of one closed-loop run."""

    sessions: int
    completed: int
    aborted: int
    failed: int
    ticks: int
    wall_s: float
    sessions_per_s: float
    ticks_per_s: float
    p50_ms: float
    p99_ms: float
    p999_ms: float
    #: Resilience outcomes: reconnect/resume/restart totals, busy
    #: shed retries, connection-level errors absorbed, and resume
    #: latency percentiles (reconnect → resumed welcome).
    resumes: int = 0
    restarts: int = 0
    shed: int = 0
    resets: int = 0
    resume_p50_ms: float = float("nan")
    resume_p99_ms: float = float("nan")
    byes: dict = field(default_factory=dict)
    predictions: dict = field(default_factory=dict)
    errors: dict = field(default_factory=dict)
    #: Raw per-tick latencies, kept so merging per-process results
    #: (:meth:`merge`) recomputes percentiles exactly.
    latencies_ns: list = field(default_factory=list, repr=False)
    resume_latencies_ns: list = field(default_factory=list, repr=False)

    @staticmethod
    def _percentiles(raw: list) -> tuple[float, float, float]:
        if not raw:
            return (float("nan"),) * 3
        p50, p99, p999 = np.percentile(
            np.array(raw, dtype=float), [50.0, 99.0, 99.9]
        ) / 1e6
        return float(p50), float(p99), float(p999)

    @classmethod
    def aggregate(cls, clients: list[_Client], wall_s: float) -> "LoadgenResult":
        raw = [ns for c in clients for ns in c.latencies_ns]
        raw_resume = [ns for c in clients for ns in c.resume_latencies_ns]
        ticks = len(raw)
        p50, p99, p999 = cls._percentiles(raw)
        r50, r99, _ = cls._percentiles(raw_resume)
        completed = sum(1 for c in clients if c.bye is not None)
        aborted = sum(1 for c in clients if c.error and c.error.startswith("aborted"))
        failed = sum(
            1
            for c in clients
            if c.bye is None and not (c.error and c.error.startswith("aborted"))
        )
        return cls(
            sessions=len(clients),
            completed=completed,
            aborted=aborted,
            failed=failed,
            ticks=ticks,
            wall_s=wall_s,
            sessions_per_s=completed / wall_s if wall_s > 0 else 0.0,
            ticks_per_s=ticks / wall_s if wall_s > 0 else 0.0,
            p50_ms=p50,
            p99_ms=p99,
            p999_ms=p999,
            resumes=sum(c.resumes for c in clients),
            restarts=sum(c.restarts for c in clients),
            shed=sum(c.shed for c in clients),
            resets=sum(c.resets for c in clients),
            resume_p50_ms=r50,
            resume_p99_ms=r99,
            byes={c.script.session_id: c.bye for c in clients if c.bye is not None},
            predictions={
                c.script.session_id: c.predictions for c in clients if c.collect
            },
            errors={c.script.session_id: c.error for c in clients if c.error},
            latencies_ns=raw,
            resume_latencies_ns=raw_resume,
        )

    @classmethod
    def merge(cls, parts: list["LoadgenResult"], wall_s: float) -> "LoadgenResult":
        """Combine per-process results under the parent's wall clock."""
        raw = [ns for p in parts for ns in p.latencies_ns]
        raw_resume = [ns for p in parts for ns in p.resume_latencies_ns]
        ticks = len(raw)
        p50, p99, p999 = cls._percentiles(raw)
        r50, r99, _ = cls._percentiles(raw_resume)
        completed = sum(p.completed for p in parts)
        byes: dict = {}
        predictions: dict = {}
        errors: dict = {}
        for part in parts:
            byes.update(part.byes)
            predictions.update(part.predictions)
            errors.update(part.errors)
        return cls(
            sessions=sum(p.sessions for p in parts),
            completed=completed,
            aborted=sum(p.aborted for p in parts),
            failed=sum(p.failed for p in parts),
            ticks=ticks,
            wall_s=wall_s,
            sessions_per_s=completed / wall_s if wall_s > 0 else 0.0,
            ticks_per_s=ticks / wall_s if wall_s > 0 else 0.0,
            p50_ms=p50,
            p99_ms=p99,
            p999_ms=p999,
            resumes=sum(p.resumes for p in parts),
            restarts=sum(p.restarts for p in parts),
            shed=sum(p.shed for p in parts),
            resets=sum(p.resets for p in parts),
            resume_p50_ms=r50,
            resume_p99_ms=r99,
            byes=byes,
            predictions=predictions,
            errors=errors,
            latencies_ns=raw,
            resume_latencies_ns=raw_resume,
        )

    def summary(self) -> dict:
        def ms(value: float) -> float | None:
            # NaN (no samples) would leak into JSON output as a
            # non-standard token; null is the honest spelling.
            return None if value != value else round(value, 3)

        return {
            "sessions": self.sessions,
            "completed": self.completed,
            "aborted": self.aborted,
            "failed": self.failed,
            "ticks": self.ticks,
            "wall_s": round(self.wall_s, 3),
            "sessions_per_s": round(self.sessions_per_s, 3),
            "ticks_per_s": round(self.ticks_per_s, 1),
            "p50_ms": ms(self.p50_ms),
            "p99_ms": ms(self.p99_ms),
            "p999_ms": ms(self.p999_ms),
            "resumes": self.resumes,
            "restarts": self.restarts,
            "shed": self.shed,
            "resets": self.resets,
            "resume_p50_ms": ms(self.resume_p50_ms),
            "resume_p99_ms": ms(self.resume_p99_ms),
        }


# ----------------------------------------------------------------------
# Forked serving daemon (benches, tests, CI smoke)
# ----------------------------------------------------------------------


async def _serve_until_sigterm(config: ServerConfig, write_fd: int) -> None:
    server = make_server(config)
    await server.start()
    os.write(write_fd, f"{server.port}\n".encode())
    os.close(write_fd)
    stop = asyncio.Event()
    asyncio.get_running_loop().add_signal_handler(signal.SIGTERM, stop.set)
    await stop.wait()
    # Graceful before hard: byes with resume tokens, then teardown.
    with contextlib.suppress(Exception):
        await server.drain()
    await server.shutdown()


def spawn_server(config: ServerConfig) -> tuple[int, int]:
    """Fork a serving daemon; returns ``(pid, port)`` once it listens.

    When ``config`` resolves to more than one shard
    (:func:`repro.serve.shard.resolve_shards`) the daemon is the
    sharded controller and the returned pid is the controller's — its
    engine workers are the controller's own children and die with it.
    """
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:
        os.close(read_fd)
        status = 0
        try:
            asyncio.run(_serve_until_sigterm(config, write_fd))
        except BaseException:
            status = 1
        os._exit(status)
    os.close(write_fd)
    with os.fdopen(read_fd) as fh:
        line = fh.readline().strip()
    if not line:
        with contextlib.suppress(ChildProcessError):
            reap_process(pid, timeout_s=5.0)
        raise RuntimeError("server child died before listening")
    return pid, int(line)


def stop_server(pid: int, *, timeout_s: float = 15.0) -> int:
    """SIGTERM the daemon and reap it; returns its exit code.

    Escalates to SIGKILL after ``timeout_s`` so a daemon wedged in
    shutdown — or orphaned by a client that died mid-handshake and left
    a connection half-routed — can never leak past the caller.
    """
    return reap_process(pid, term=True, timeout_s=timeout_s)


# ----------------------------------------------------------------------
# CLI (the CI serving smoke)
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Spawn a Prognos server and drive simulated UE sessions at it."
    )
    parser.add_argument("--sessions", type=int, default=4)
    parser.add_argument("--drives", type=int, default=2)
    parser.add_argument("--length-km", type=float, default=0.6)
    parser.add_argument("--max-ticks", type=int, default=None)
    parser.add_argument(
        "--mode", choices=("batched", "sequential"), default="batched"
    )
    parser.add_argument("--seed", type=int, default=101)
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="engine shard processes (default: REPRO_SERVE_SHARDS / cpus-1)",
    )
    parser.add_argument(
        "--routing", choices=("auto", "reuseport", "handoff"), default="auto"
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=1,
        help="load generator worker processes",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="fire the REPRO_FAULTS network family per send and resume "
        "dropped sessions",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="collect every prediction stream and assert it matches the "
        "offline run_prognos_over_logs oracle",
    )
    args = parser.parse_args(argv)

    from repro.radio.bands import BandClass
    from repro.ran import OPX
    from repro.simulate.runner import run_drives
    from repro.simulate.scenarios import freeway_scenario

    logs = run_drives(
        [
            freeway_scenario(
                OPX, BandClass.LOW, length_km=args.length_km, seed=args.seed + i
            )
            for i in range(args.drives)
        ]
    )
    configs = configs_for_log(OPX, (BandClass.LOW,))
    scripts = [
        build_script(
            logs[i % len(logs)],
            f"ue-{i:04d}",
            configs,
            max_ticks=args.max_ticks,
        )
        for i in range(args.sessions)
    ]
    config = ServerConfig(
        batched=args.mode == "batched", shards=args.shards, routing=args.routing
    )
    pid, port = spawn_server(config)
    try:
        result = run_load(
            port,
            scripts,
            processes=args.processes,
            chaos=args.chaos,
            collect=args.verify,
        )
    finally:
        exit_code = stop_server(pid)
    summary = result.summary()
    summary["mode"] = args.mode
    summary["shards"] = resolve_shards(config)
    summary["server_exit"] = exit_code
    mismatches = 0
    if args.verify:
        from repro.core.evaluation import run_prognos_over_logs

        oracle = {}
        for i, log in enumerate(logs):
            offline = run_prognos_over_logs([log], configs)
            oracle[i] = list(zip(offline.times_s, offline.predictions))
        for i, script in enumerate(scripts):
            expect = oracle[i % len(logs)][: script.n_ticks]
            got = result.predictions.get(script.session_id, [])
            ok = len(got) == len(expect) and all(
                g[0] == e[0] and g[1] == e[1] for g, e in zip(got, expect)
            )
            if not ok:
                mismatches += 1
                print(
                    f"stream mismatch for {script.session_id}: "
                    f"{len(got)} predictions vs oracle {len(expect)}",
                    file=sys.stderr,
                )
        summary["verified"] = len(scripts) - mismatches
    print(json.dumps(summary, indent=2))
    if exit_code != 0:
        print("server did not shut down cleanly", file=sys.stderr)
        return 1
    if mismatches:
        print("prediction streams diverged from the offline oracle", file=sys.stderr)
        return 1
    if result.failed or result.completed != args.sessions:
        print("not all sessions completed cleanly", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
