"""Validated ``REPRO_SERVE_*`` environment knobs.

Every serving knob goes through these helpers, which follow the
``default_workers`` convention (:func:`repro.simulate.runner.
default_workers`): a malformed, negative, or out-of-range value earns
one :class:`RuntimeWarning` naming the variable and the fallback, and
the default is used — the server never raises deep inside its event
loop because an operator exported ``REPRO_SERVE_SHARDS=lots``.

"Warn once" is per (variable, raw value) per process, so a daemon that
re-reads its knobs on every accepted session does not spam the log,
while changing the broken value to a differently broken one still
warns.
"""

from __future__ import annotations

import os
import warnings

#: (name, raw value) pairs already warned about in this process.
_warned: set[tuple[str, str]] = set()


def _warn_once(name: str, raw: str, why: str, default) -> None:
    key = (name, raw)
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(
        f"{name}={raw!r} {why}; falling back to the default {default!r}",
        RuntimeWarning,
        stacklevel=4,
    )


def env_int(name: str, default: int, minimum: int = 0) -> int:
    """An integer knob; non-integers and values below ``minimum`` warn
    once and fall back to ``default``."""
    raw = os.environ.get(name, "")
    if raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        _warn_once(name, raw, "is not an integer", default)
        return default
    if value < minimum:
        _warn_once(name, raw, f"is below the minimum {minimum}", default)
        return default
    return value


def env_float(name: str, default: float, minimum: float = 0.0) -> float:
    """A float knob; non-numbers, NaN, and values below ``minimum``
    warn once and fall back to ``default``."""
    raw = os.environ.get(name, "")
    if raw == "":
        return default
    try:
        value = float(raw)
    except ValueError:
        _warn_once(name, raw, "is not a number", default)
        return default
    if not value >= minimum:  # also catches NaN
        _warn_once(name, raw, f"is below the minimum {minimum}", default)
        return default
    return value


def env_choice(name: str, default: str, choices: tuple[str, ...]) -> str:
    """An enumerated knob; unknown values warn once and fall back."""
    raw = os.environ.get(name, "")
    if raw == "":
        return default
    value = raw.strip().lower()
    if value not in choices:
        _warn_once(name, raw, f"is not one of {choices}", default)
        return default
    return value
