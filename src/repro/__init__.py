"""repro — Vivisecting Mobility Management in 5G Cellular Networks.

A full Python reproduction of the SIGCOMM 2022 paper: a calibrated 5G
mobility simulator standing in for the paper's cross-country drive
tests, the §4-§6 measurement analyses, and the Prognos handover
prediction system with its ML baselines and application case studies.

Typical entry points:

>>> from repro.simulate.scenarios import freeway_scenario
>>> from repro.ran import OPX
>>> from repro.radio.bands import BandClass
>>> log = freeway_scenario(OPX, BandClass.LOW, length_km=5, seed=1).run()

then feed ``log`` to :mod:`repro.analysis` (measurement analyses) or
:mod:`repro.core` (Prognos). See README.md for the architecture map.
"""

from repro.radio.bands import BandClass, RadioAccessTechnology
from repro.ran.carrier import CARRIERS, OPX, OPY, OPZ, carrier_by_name
from repro.rrc.taxonomy import HandoverType
from repro.simulate.records import DriveLog

__version__ = "1.0.0"

__all__ = [
    "BandClass",
    "CARRIERS",
    "DriveLog",
    "HandoverType",
    "OPX",
    "OPY",
    "OPZ",
    "RadioAccessTechnology",
    "carrier_by_name",
    "__version__",
]
