"""Cloud gaming under mobility (§4.1, Fig. 5).

A Steam-Remote-Play-style stream: 4K@60FPS fetched from a cloud GPU.
Frames miss their deadline (and are dropped) when the downlink cannot
deliver them in time — during handover interruptions, entire groups of
frames go. The paper's findings reproduced here:

* network latency rises ~2.26x during handovers, dropped frames ~2.6x;
* the handover *type* matters: an MeNB HO (MNBH) — which interrupts both
  radios — costs ~16.8 ms more latency and ~65% more dropped frames than
  an intra-gNB SCG Modification, whose interruption the surviving LTE
  leg absorbs under a split bearer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.qoe import WindowComparison, compare_ho_windows, ho_window_mask
from repro.net.bearer import BearerMode
from repro.net.latency import LatencyModel
from repro.rrc.taxonomy import HandoverType
from repro.simulate.records import DriveLog


@dataclass(frozen=True)
class TypeImpact:
    """Mean latency / drop rate inside one HO type's windows."""

    ho_type: HandoverType
    mean_latency_ms: float
    drop_rate_pct: float
    windows: int


@dataclass(frozen=True)
class GamingResult:
    times_s: np.ndarray
    network_latency_ms: np.ndarray
    dropped_pct: np.ndarray
    latency_comparison: WindowComparison
    drops_comparison: WindowComparison
    per_type: dict[HandoverType, TypeImpact]


class CloudGamingModel:
    """Trace-driven 4K@60FPS game stream."""

    def __init__(
        self,
        *,
        bitrate_mbps: float = 35.0,
        fps: float = 60.0,
        frame_deadline_ms: float = 34.0,
        seed: int = 11,
    ):
        if bitrate_mbps <= 0 or fps <= 0 or frame_deadline_ms <= 0:
            raise ValueError("gaming parameters must be positive")
        self._bitrate = bitrate_mbps
        self._fps = fps
        self._deadline_ms = frame_deadline_ms
        self._rng = np.random.default_rng(seed)
        self._latency = LatencyModel(self._rng, jitter_ms=2.0)

    def run(self, log: DriveLog) -> GamingResult:
        times = np.array([t.time_s for t in log.ticks])
        latency = np.empty(len(times))
        dropped = np.empty(len(times))
        dt = log.tick_interval_s or 0.05
        backlog_s = 0.0
        frame_bits = self._bitrate * 1e6 / self._fps
        for i, tick in enumerate(log.ticks):
            capacity = tick.total_capacity_mbps
            if capacity <= 1e-9:
                backlog_s += dt
            else:
                drain = dt * max(capacity / self._bitrate - 1.0, 0.0)
                backlog_s = max(backlog_s - drain, 0.0)
            rtt = self._latency.rtt_ms(
                log.bearer if log.bearer is not None else BearerMode.DUAL,
                nr_attached=tick.nr_serving_gci is not None,
                nr_interrupted_remaining_s=backlog_s if tick.nr_interrupted else 0.0,
                lte_interrupted_remaining_s=backlog_s if tick.lte_interrupted else 0.0,
            )
            # One-way network latency: half RTT plus serialization of one
            # frame at the current capacity, plus any backlog.
            if capacity > 1e-9:
                serialization_ms = frame_bits / (capacity * 1e6) * 1000.0
            else:
                serialization_ms = self._deadline_ms * 4.0
            net_ms = rtt / 2.0 + serialization_ms + backlog_s * 1000.0
            latency[i] = net_ms
            # Fraction of this tick's frames missing the deadline.
            if net_ms > self._deadline_ms * 3:
                dropped[i] = 100.0
            elif net_ms > self._deadline_ms:
                dropped[i] = 100.0 * (net_ms - self._deadline_ms) / (self._deadline_ms * 2)
            else:
                dropped[i] = 0.0
        per_type = {}
        for ho_type in (HandoverType.SCGM, HandoverType.MNBH, HandoverType.SCGC,
                        HandoverType.SCGA, HandoverType.SCGR, HandoverType.LTEH):
            records = log.handovers_of(ho_type)
            if not records:
                continue
            mask = ho_window_mask(times, records)
            if not np.any(mask):
                continue
            per_type[ho_type] = TypeImpact(
                ho_type=ho_type,
                mean_latency_ms=float(np.mean(latency[mask])),
                drop_rate_pct=float(np.mean(dropped[mask])),
                windows=len(records),
            )
        return GamingResult(
            times_s=times,
            network_latency_ms=latency,
            dropped_pct=dropped,
            latency_comparison=compare_ho_windows(times, latency, log.handovers),
            drops_comparison=compare_ho_windows(times, dropped, log.handovers),
            per_type=per_type,
        )
