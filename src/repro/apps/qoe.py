"""QoE analysis helpers: comparing metrics around handovers (§4.1).

The paper's recipe: extract a 1-second window around each handover and
compare the metric inside those windows against the no-handover rest of
the trace — that is where "latency increases 2.26x during HOs" comes
from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulate.records import DriveLog, HandoverRecord


@dataclass(frozen=True, slots=True)
class WindowComparison:
    """Metric inside HO windows vs. outside."""

    with_ho_mean: float
    without_ho_mean: float
    with_ho_max: float
    samples_with: int
    samples_without: int

    @property
    def mean_ratio(self) -> float:
        if self.without_ho_mean == 0:
            return float("inf")
        return self.with_ho_mean / self.without_ho_mean

    @property
    def max_ratio(self) -> float:
        if self.without_ho_mean == 0:
            return float("inf")
        return self.with_ho_max / self.without_ho_mean


def ho_window_mask(
    times_s: np.ndarray,
    handovers: list[HandoverRecord],
    *,
    window_s: float = 1.0,
) -> np.ndarray:
    """Boolean mask of samples lying within +-window of any handover."""
    mask = np.zeros(len(times_s), dtype=bool)
    for record in handovers:
        mask |= (times_s >= record.decision_time_s - window_s) & (
            times_s <= record.complete_s + window_s
        )
    return mask


def compare_ho_windows(
    times_s: np.ndarray,
    values: np.ndarray,
    handovers: list[HandoverRecord],
    *,
    window_s: float = 1.0,
) -> WindowComparison:
    """Compare a metric series inside vs. outside handover windows."""
    if len(times_s) != len(values):
        raise ValueError("times and values must align")
    mask = ho_window_mask(times_s, handovers, window_s=window_s)
    inside = values[mask]
    outside = values[~mask]
    if inside.size == 0 or outside.size == 0:
        raise ValueError("need samples both inside and outside HO windows")
    return WindowComparison(
        with_ho_mean=float(np.mean(inside)),
        without_ho_mean=float(np.mean(outside)),
        with_ho_max=float(np.max(inside)),
        samples_with=int(inside.size),
        samples_without=int(outside.size),
    )
