"""Chunked 16K panoramic VoD player (§7.4's first case study).

The paper's setup: a 120-second video in 60 two-second chunks encoded at
6 quality levels (720p → 16K), streamed over recorded bandwidth traces
through Mahimahi. The player downloads chunk by chunk, maintains a
playout buffer, and asks its ABR algorithm (fed by a throughput
predictor, optionally HO-corrected) for each chunk's level. Outputs the
Fig. 14a axes: time-on-stall percentage and normalised bitrate, plus the
Fig. 14b throughput-prediction errors split by handover proximity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.apps.abr.algorithms import AbrAlgorithm
from repro.apps.abr.prediction import (
    HarmonicMeanPredictor,
    PredictionFeed,
    effective_score,
)
from repro.net.emulation import BandwidthTrace, TraceDrivenLink
from repro.simulate import fanout

#: 16K panoramic ladder (Mbps): 720p, 1080p, 2K, 4K, 8K, 16K.
VIDEO_LEVELS_MBPS = [6.0, 12.0, 24.0, 50.0, 105.0, 210.0]

CHUNK_SECONDS = 2.0
CHUNK_COUNT = 60
MAX_BUFFER_S = 16.0


@dataclass(frozen=True)
class VodResult:
    """One playback session's QoE."""

    algorithm: str
    levels: list[int]
    stall_s: float
    video_s: float
    mean_bitrate_mbps: float
    prediction_errors: list[tuple[float, float, bool]]
    #: (predicted, actual, was a HO within the chunk download)

    @property
    def stall_pct(self) -> float:
        return 100.0 * self.stall_s / (self.video_s + self.stall_s)

    @property
    def normalized_bitrate(self) -> float:
        return self.mean_bitrate_mbps / VIDEO_LEVELS_MBPS[-1]

    def prediction_mae(self, *, near_ho: bool) -> float:
        """Mean absolute throughput-prediction error (Mbps), Fig. 14b."""
        errors = [
            abs(p - a) for p, a, ho in self.prediction_errors if ho == near_ho
        ]
        if not errors:
            return 0.0
        return float(np.mean(errors))


class VodPlayer:
    """Replays the 16K VoD workload over one bandwidth trace."""

    def __init__(
        self,
        algorithm: AbrAlgorithm,
        *,
        feed: PredictionFeed | None = None,
        levels_mbps: list[float] | None = None,
        chunk_s: float = CHUNK_SECONDS,
        chunks: int = CHUNK_COUNT,
        max_buffer_s: float = MAX_BUFFER_S,
    ):
        self._algorithm = algorithm
        self._feed = feed
        self._levels = levels_mbps or list(VIDEO_LEVELS_MBPS)
        self._chunk_s = chunk_s
        self._chunks = chunks
        self._max_buffer = max_buffer_s

    def play(
        self,
        trace: BandwidthTrace,
        events: list[tuple[float, object]] | None = None,
    ) -> VodResult:
        """Play the whole video over ``trace``.

        Args:
            trace: the bandwidth trace (looped if shorter than playback).
            events: actual handover times (used only to tag prediction
                errors for the Fig. 14b analysis).
        """
        link = TraceDrivenLink(trace, loop=True)
        predictor = HarmonicMeanPredictor()
        t = 0.0
        buffer_s = 0.0
        stall = 0.0
        level = 0
        chosen: list[int] = []
        errors: list[tuple[float, float, bool]] = []
        for chunk_index in range(self._chunks):
            base_prediction = predictor.predict_mbps()
            prediction = base_prediction
            if self._feed is not None:
                score = effective_score(self._feed.score_at(t % trace.duration_s))
                prediction = base_prediction * score
            level = self._algorithm.select(
                self._levels, buffer_s, level, prediction, self._chunk_s
            )
            chosen.append(level)
            size_bytes = self._levels[level] * 1e6 / 8.0 * self._chunk_s
            download_s = link.download_time_s(size_bytes, t)
            actual_mbps = self._levels[level] * self._chunk_s / max(download_s, 1e-6)
            near_ho = False
            if events:
                trace_t = t % trace.duration_s
                near_ho = any(
                    trace_t - 1.0 <= e <= trace_t + download_s + 1.0 for e, _ in events
                )
            errors.append((prediction, actual_mbps, near_ho))
            predictor.observe(actual_mbps)
            self._algorithm.observe_error(prediction, actual_mbps)
            t += download_s
            if download_s > buffer_s:
                # The first chunk's wait is startup/join time, not a
                # rebuffering stall.
                if chunk_index > 0:
                    stall += download_s - buffer_s
                buffer_s = 0.0
            else:
                buffer_s -= download_s
            buffer_s += self._chunk_s
            if buffer_s > self._max_buffer:
                wait = buffer_s - self._max_buffer
                t += wait
                buffer_s = self._max_buffer
        mean_bitrate = float(np.mean([self._levels[l] for l in chosen]))
        return VodResult(
            algorithm=self._algorithm.name + ("" if self._feed is None else "+feed"),
            levels=chosen,
            stall_s=stall,
            video_s=self._chunks * self._chunk_s,
            mean_bitrate_mbps=mean_bitrate,
            prediction_errors=errors,
        )


#: One playback session: (algorithm_factory, trace, feed, events). The
#: factory is called in the worker so every session gets a fresh
#: algorithm instance and the job tuple stays picklable.
PlayJob = tuple[
    Callable[[], AbrAlgorithm],
    BandwidthTrace,
    "PredictionFeed | None",
    "list[tuple[float, object]] | None",
]


def _play_job(job: PlayJob) -> VodResult:
    # Module-level so ProcessPoolExecutor can pickle it by reference.
    factory, trace, feed, events = job
    return VodPlayer(factory(), feed=feed).play(trace, events)


def _play_job_indexed(job: tuple[int, int]) -> VodResult:
    # Fork-inherited fan-out worker: resolve the session by index so
    # traces/feeds are never pickled per job.
    token, index = job
    return _play_job(fanout.payload(token)[index])


def play_many(jobs: Iterable[PlayJob], *, workers: int | None = None) -> list[VodResult]:
    """Play many independent sessions, fanned out over processes.

    Sessions are independent (each builds its own link/predictor), so
    they fan out exactly like :func:`repro.simulate.runner.run_drives`,
    and like it they ship no payload: the job list (traces included) is
    fork-inherited via :mod:`repro.simulate.fanout`, each worker job is
    just an index. Results come back in job order regardless of worker
    count. The pass is supervised (:mod:`repro.robust`): a crashed or
    hung session is retried under ``REPRO_JOB_TIMEOUT_S`` /
    ``REPRO_JOB_RETRIES`` and the pool degrades to serial execution
    rather than losing the run.

    Args:
        jobs: ``(algorithm_factory, trace, feed, events)`` tuples.
        workers: process count. None reads ``REPRO_BENCH_WORKERS``
            (default 1 = serial in-process).
    """
    from repro.simulate.runner import default_workers

    jobs = list(jobs)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(jobs) <= 1:
        return [_play_job(job) for job in jobs]
    return fanout.fanout_map(
        _play_job_indexed,
        jobs,
        len(jobs),
        workers,
        fallback_fn=_play_job,
        fallback_jobs=jobs,
    )
