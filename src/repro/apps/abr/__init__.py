"""Adaptive bitrate machinery for the §7.4 case studies.

Throughput prediction (harmonic mean, optionally corrected by handover
predictions — the paper's Prognos integration), the ABR algorithms the
paper modifies (rate-based, fastMPC, robustMPC, FESTIVE), and the
chunked VoD player that replays them over recorded bandwidth traces.
"""

from repro.apps.abr.prediction import (
    HarmonicMeanPredictor,
    HoAwareCorrector,
    PredictionFeed,
)
from repro.apps.abr.algorithms import (
    AbrAlgorithm,
    RateBased,
    FastMpc,
    RobustMpc,
    Festive,
)
from repro.apps.abr.player import (
    PlayJob,
    VodPlayer,
    VodResult,
    VIDEO_LEVELS_MBPS,
    play_many,
)

__all__ = [
    "AbrAlgorithm",
    "FastMpc",
    "Festive",
    "HarmonicMeanPredictor",
    "HoAwareCorrector",
    "PlayJob",
    "PredictionFeed",
    "RateBased",
    "RobustMpc",
    "VIDEO_LEVELS_MBPS",
    "VodPlayer",
    "VodResult",
    "play_many",
]
