"""Throughput prediction for rate adaptation, with HO-aware correction.

The paper's Prognos integration is deliberately minimal (§7.4): take
whatever throughput prediction the ABR scheme already uses and multiply
it by the ``ho_score`` Prognos emits when a handover is expected in the
next window; touch nothing in "no HO" periods. ``PredictionFeed`` is
the time-indexed channel between the predictor (Prognos output or the
ground-truth schedule) and the rate adaptation loop.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.ho_score import DEFAULT_HO_SCORES, ho_score_for
from repro.rrc.taxonomy import HandoverType


class HarmonicMeanPredictor:
    """The default throughput predictor of MPC-family ABR schemes."""

    def __init__(self, history: int = 5):
        if history < 1:
            raise ValueError("history must be at least 1")
        self._rates: deque[float] = deque(maxlen=history)

    def observe(self, rate_mbps: float) -> None:
        if rate_mbps <= 0:
            raise ValueError("observed rate must be positive")
        self._rates.append(rate_mbps)

    def predict_mbps(self, default: float = 5.0) -> float:
        if not self._rates:
            return default
        return len(self._rates) / sum(1.0 / r for r in self._rates)


@dataclass(frozen=True)
class PredictionFeed:
    """Time-indexed handover predictions: (time, type, ho_score).

    Build from Prognos output (:meth:`from_prognos`) or from the actual
    handover schedule (:meth:`from_ground_truth` — the paper's "-GT"
    upper bound).
    """

    times_s: np.ndarray
    scores: np.ndarray
    #: How far past the query each entry stays pertinent. A Prognos feed
    #: is causal — entries are predictions already made, looked *back*
    #: at. A ground-truth feed is an oracle over the whole schedule, so
    #: a handover landing mid-download (a couple of seconds ahead) is
    #: known and marked with a positive horizon.
    lookahead_s: float = 0.0

    def __post_init__(self) -> None:
        if len(self.times_s) != len(self.scores):
            raise ValueError("times and scores must align")

    def score_at(self, time_s: float, lookback_s: float = 0.75) -> float:
        """ho_score in force at ``time_s`` (1.0 = no handover expected).

        Considers entries within ``[time_s - lookback_s,
        time_s + lookahead_s]`` and returns the most conservative
        (minimum) score among them.
        """
        if len(self.times_s) == 0:
            return 1.0
        times = self.times_s
        lo = bisect.bisect_left(times.tolist(), time_s - lookback_s)
        hi = bisect.bisect_right(times.tolist(), time_s + self.lookahead_s)
        if lo >= hi:
            return 1.0
        return float(np.min(self.scores[lo:hi]))

    @classmethod
    def from_prognos(
        cls,
        times_s: np.ndarray,
        predictions: list[HandoverType],
        ho_scores: dict[HandoverType, float] | None = None,
    ) -> "PredictionFeed":
        """Causal feed from a Prognos replay (HO-predicting ticks kept)."""
        keep_t, keep_s = [], []
        for t, p in zip(times_s, predictions):
            if p is not HandoverType.NONE:
                keep_t.append(float(t))
                keep_s.append(ho_score_for(p, ho_scores))
        return cls(np.array(keep_t), np.array(keep_s), lookahead_s=0.0)

    @classmethod
    def from_ground_truth(
        cls,
        events: list[tuple[float, HandoverType]],
        ho_scores: dict[HandoverType, float] | None = None,
        lookahead_s: float = 2.5,
    ) -> "PredictionFeed":
        """Oracle feed: the actual schedule, visible ``lookahead_s`` out."""
        times = [t for t, _ in events]
        scores = [ho_score_for(ho_type, ho_scores) for _, ho_type in events]
        order = np.argsort(times)
        return cls(
            np.array(times)[order], np.array(scores)[order], lookahead_s=lookahead_s
        )

    @classmethod
    def empty(cls) -> "PredictionFeed":
        return cls(np.array([]), np.array([]))


def effective_score(score: float) -> float:
    """Blend an ho_score for a download that straddles the handover.

    A downward score (SCG release ahead) applies in full — the paper's
    stall savings come from being conservative there. An upward score
    (SCG addition ahead) only partially materialises within the next
    chunk: the download spends its first part at pre-handover capacity,
    so we apply the average of pre (1.0) and post (score), capped.
    """
    if score <= 1.0:
        return score
    return min((1.0 + score) / 2.0, 1.5)


class HoAwareCorrector:
    """Scales a base throughput prediction by the expected HO impact.

    This is exactly the paper's modification: predicted_throughput x
    ho_score, applied only when a handover is expected.
    """

    def __init__(self, base: HarmonicMeanPredictor, feed: PredictionFeed):
        self._base = base
        self._feed = feed

    def observe(self, rate_mbps: float) -> None:
        self._base.observe(rate_mbps)

    def predict_mbps(self, time_s: float, default: float = 5.0) -> float:
        score = effective_score(self._feed.score_at(time_s))
        return self._base.predict_mbps(default) * score
