"""The ABR algorithms the paper evaluates (§7.4).

* rate-based (RB): pick the highest level sustainable at the predicted
  throughput;
* fastMPC / robustMPC (Yin et al.): model-predictive control over a
  short look-ahead horizon maximising a bitrate/rebuffering/smoothness
  QoE; robustMPC discounts the prediction by its recent maximum error;
* FESTIVE (Jiang et al.): harmonic-mean bandwidth estimate, gradual
  (one-level) switching with an up-switch stability counter.

All algorithms receive the throughput prediction from outside — that is
the seam where the paper splices Prognos in.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Protocol

import numpy as np


@lru_cache(maxsize=32)
def _plan_matrix(n_levels: int, horizon: int) -> np.ndarray:
    """All ``n_levels ** horizon`` bitrate plans as an int matrix.

    Rows follow ``itertools.product(range(n_levels), repeat=horizon)``
    order, so a first-maximum ``argmax`` over per-plan scores picks the
    same plan the scalar enumeration would. Built once per ladder shape
    and cached — the MPC family re-scores it every chunk.
    """
    grid = np.indices((n_levels,) * horizon)
    matrix = grid.reshape(horizon, -1).T
    matrix.setflags(write=False)
    return matrix


@lru_cache(maxsize=64)
def _group_matrices(
    ladder: tuple, chunk_s: float, horizon: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group-shared MPC matrices for one (ladder, chunk) shape.

    Pure functions of the key, memoised because the serving engine
    re-scores the same ladder every chunk of every session.
    """
    plans = _plan_matrix(len(ladder), horizon)
    levels = np.asarray(ladder, dtype=float)
    base = levels[plans] * chunk_s
    quality = levels[plans] / levels[-1] * 10.0
    base.setflags(write=False)
    quality.setflags(write=False)
    return plans, base, quality


class AbrAlgorithm(Protocol):
    """Selects the next chunk's quality level."""

    name: str

    def select(
        self,
        levels_mbps: list[float],
        buffer_s: float,
        last_level: int,
        predicted_mbps: float,
        chunk_s: float,
    ) -> int: ...

    def observe_error(self, predicted_mbps: float, actual_mbps: float) -> None: ...


class RateBased:
    """Highest level whose bitrate fits under the predicted throughput."""

    def __init__(self, safety: float = 0.9):
        if not 0.0 < safety <= 1.0:
            raise ValueError("safety factor must lie in (0, 1]")
        self.name = "RB"
        self._safety = safety

    def select(
        self,
        levels_mbps: list[float],
        buffer_s: float,
        last_level: int,
        predicted_mbps: float,
        chunk_s: float,
    ) -> int:
        budget = predicted_mbps * self._safety
        level = 0
        for i, rate in enumerate(levels_mbps):
            if rate <= budget:
                level = i
        return level

    def observe_error(self, predicted_mbps: float, actual_mbps: float) -> None:
        pass


class _MpcBase:
    """Shared look-ahead optimisation for the MPC family."""

    HORIZON = 3
    REBUF_PENALTY = 8.0
    SMOOTH_PENALTY = 0.5

    def __init__(self) -> None:
        self._recent_errors: list[float] = []

    def _discounted(self, predicted_mbps: float) -> float:
        return predicted_mbps

    def select(
        self,
        levels_mbps: list[float],
        buffer_s: float,
        last_level: int,
        predicted_mbps: float,
        chunk_s: float,
    ) -> int:
        throughput = max(self._discounted(predicted_mbps), 0.1)
        plans = _plan_matrix(len(levels_mbps), self.HORIZON)
        levels = np.asarray(levels_mbps, dtype=float)
        # Operation order mirrors the scalar reference exactly, so the
        # per-plan values are bitwise identical and the first-maximum
        # argmax picks the same plan on ties.
        download_s = levels[plans] * chunk_s / throughput
        quality = levels[plans] / levels[-1] * 10.0
        value = np.zeros(plans.shape[0])
        buf = np.full(plans.shape[0], float(buffer_s))
        prev = np.full(plans.shape[0], last_level)
        # Horizon steps stay a loop (HORIZON is 3); plans vectorize.
        for step in range(self.HORIZON):
            d = download_s[:, step]
            stall = np.maximum(d - buf, 0.0)
            buf = np.maximum(buf - d, 0.0) + chunk_s
            value += (
                quality[:, step]
                - self.REBUF_PENALTY * stall
                - self.SMOOTH_PENALTY * np.abs(plans[:, step] - prev)
            )
            prev = plans[:, step]
        return int(plans[int(np.argmax(value)), 0])

    def select_reference(
        self,
        levels_mbps: list[float],
        buffer_s: float,
        last_level: int,
        predicted_mbps: float,
        chunk_s: float,
    ) -> int:
        """Scalar plan enumeration — ground truth for ``select``."""
        throughput = max(self._discounted(predicted_mbps), 0.1)
        best_value = float("-inf")
        best_first = last_level
        for plan in itertools.product(range(len(levels_mbps)), repeat=self.HORIZON):
            value = 0.0
            buf = buffer_s
            prev = last_level
            for level in plan:
                download_s = levels_mbps[level] * chunk_s / throughput
                stall = max(download_s - buf, 0.0)
                buf = max(buf - download_s, 0.0) + chunk_s
                value += (
                    levels_mbps[level] / levels_mbps[-1] * 10.0
                    - self.REBUF_PENALTY * stall
                    - self.SMOOTH_PENALTY * abs(level - prev)
                )
                prev = level
            if value > best_value:
                best_value = value
                best_first = plan[0]
        return best_first

    def observe_error(self, predicted_mbps: float, actual_mbps: float) -> None:
        if actual_mbps <= 0:
            return
        error = abs(predicted_mbps - actual_mbps) / actual_mbps
        self._recent_errors.append(error)
        del self._recent_errors[:-5]


class FastMpc(_MpcBase):
    """MPC with the raw throughput prediction."""

    def __init__(self) -> None:
        super().__init__()
        self.name = "fastMPC"


class RobustMpc(_MpcBase):
    """MPC discounting the prediction by its recent maximum error."""

    def __init__(self) -> None:
        super().__init__()
        self.name = "robustMPC"

    def _discounted(self, predicted_mbps: float) -> float:
        if not self._recent_errors:
            return predicted_mbps
        return predicted_mbps / (1.0 + max(self._recent_errors))


def mpc_select_many(
    entries: list[tuple["_MpcBase", list[float], float, int, float, float]],
) -> list[int]:
    """Batched :meth:`_MpcBase.select` over many independent sessions.

    ``entries`` rows are ``(algo, levels_mbps, buffer_s, last_level,
    predicted_mbps, chunk_s)``. Sessions sharing a ladder shape and
    chunk duration are scored against one shared plan/quality matrix;
    the per-plan value accumulation broadcasts over sessions with the
    exact per-element operation order of :meth:`_MpcBase.select`, so
    every returned level is bitwise identical to the scalar call. The
    prediction discount stays a per-session scalar (it reads the algo's
    recent-error state).
    """
    results = [0] * len(entries)
    groups: dict[tuple, list[tuple[int, "_MpcBase", float, int, float]]] = {}
    for idx, (algo, levels_mbps, buffer_s, last_level, predicted, chunk_s) in enumerate(
        entries
    ):
        if not isinstance(algo, _MpcBase):
            raise TypeError(f"mpc_select_many needs MPC-family algos, got {algo!r}")
        key = (
            tuple(levels_mbps),
            float(chunk_s),
            algo.HORIZON,
            algo.REBUF_PENALTY,
            algo.SMOOTH_PENALTY,
        )
        groups.setdefault(key, []).append((idx, algo, buffer_s, last_level, predicted))
    for (ladder, chunk_s, horizon, rebuf, smooth), members in groups.items():
        # ``levels[plans] * chunk_s / throughput`` associates left, so
        # the numerator is shared across the group and only the final
        # divide is per-session — bitwise identical to the scalar path.
        plans, base, quality = _group_matrices(ladder, chunk_s, horizon)
        throughput = np.array(
            [max(algo._discounted(predicted), 0.1) for _, algo, _, _, predicted in members]
        )
        download_s = base[None, :, :] / throughput[:, None, None]
        n_plans = plans.shape[0]
        value = np.zeros((len(members), n_plans))
        buf = np.empty((len(members), n_plans))
        buf[...] = np.array([float(b) for _, _, b, _, _ in members])[:, None]
        # Step 0 smoothness depends on each session's last level; later
        # steps compare consecutive plan columns, shared group-wide.
        # Scratch-buffer ufuncs below keep the elementwise op sequence
        # of the expression form (multiply commutes bitwise in IEEE
        # 754), trading temporaries for two reused buffers.
        prev: np.ndarray = np.array([last for _, _, _, last, _ in members])[:, None]
        stall = np.empty_like(buf)
        for step in range(horizon):
            d = download_s[:, :, step]
            np.subtract(d, buf, out=stall)
            np.maximum(stall, 0.0, out=stall)
            np.subtract(buf, d, out=buf)
            np.maximum(buf, 0.0, out=buf)
            np.add(buf, chunk_s, out=buf)
            np.multiply(stall, rebuf, out=stall)
            np.subtract(quality[:, step], stall, out=stall)
            np.subtract(
                stall, smooth * np.abs(plans[:, step] - prev), out=stall
            )
            np.add(value, stall, out=value)
            prev = plans[:, step]
        winners = np.argmax(value, axis=1)
        for row, (idx, _, _, _, _) in enumerate(members):
            results[idx] = int(plans[int(winners[row]), 0])
    return results


class Festive:
    """FESTIVE: gradual switching with an up-switch stability counter."""

    def __init__(self, safety: float = 0.85, up_patience: int = 2):
        if not 0.0 < safety <= 1.0:
            raise ValueError("safety factor must lie in (0, 1]")
        if up_patience < 1:
            raise ValueError("up patience must be at least 1")
        self.name = "FESTIVE"
        self._safety = safety
        self._up_patience = up_patience
        self._up_votes = 0

    def select(
        self,
        levels_mbps: list[float],
        buffer_s: float,
        last_level: int,
        predicted_mbps: float,
        chunk_s: float,
    ) -> int:
        budget = predicted_mbps * self._safety
        target = 0
        for i, rate in enumerate(levels_mbps):
            if rate <= budget:
                target = i
        if target > last_level:
            self._up_votes += 1
            if self._up_votes >= self._up_patience:
                self._up_votes = 0
                return last_level + 1  # gradual up-switch
            return last_level
        self._up_votes = 0
        if target < last_level:
            return last_level - 1  # gradual down-switch
        return last_level

    def observe_error(self, predicted_mbps: float, actual_mbps: float) -> None:
        pass
