"""Application models: the workloads whose QoE the paper measures.

Three §4 case studies (live conferencing, cloud gaming, real-time
volumetric streaming) quantify what handovers do to applications, and
two §7.4 case studies (16K panoramic VoD, volumetric streaming) show
what Prognos's handover predictions buy back. All are trace-driven: they
consume the drive simulator's capacity/interruption series exactly the
way the paper replayed Mahimahi traces.
"""

from repro.apps.qoe import WindowComparison, compare_ho_windows
from repro.apps.conferencing import ConferencingModel, ConferencingResult
from repro.apps.gaming import CloudGamingModel, GamingResult
from repro.apps.volumetric import (
    VolumetricStream,
    VolumetricResult,
    VOLUMETRIC_LEVELS_MBPS,
)
from repro.apps.abr.player import (
    PlayJob,
    VodPlayer,
    VodResult,
    VIDEO_LEVELS_MBPS,
    play_many,
)
from repro.apps.abr.algorithms import (
    RateBased,
    FastMpc,
    RobustMpc,
    Festive,
    AbrAlgorithm,
)
from repro.apps.abr.prediction import (
    HarmonicMeanPredictor,
    HoAwareCorrector,
    PredictionFeed,
)

__all__ = [
    "AbrAlgorithm",
    "CloudGamingModel",
    "ConferencingModel",
    "ConferencingResult",
    "FastMpc",
    "Festive",
    "GamingResult",
    "HarmonicMeanPredictor",
    "HoAwareCorrector",
    "PlayJob",
    "PredictionFeed",
    "RateBased",
    "RobustMpc",
    "VIDEO_LEVELS_MBPS",
    "VOLUMETRIC_LEVELS_MBPS",
    "VodPlayer",
    "VodResult",
    "VolumetricResult",
    "VolumetricStream",
    "WindowComparison",
    "compare_ho_windows",
    "play_many",
]
