"""Real-time volumetric video streaming (§4.1 Fig. 6, §7.4 Fig. 14c).

A ViVo-style point-cloud stream: 30 FPS content encoded at 5 density
levels (43-170 Mbps). Being real-time, there is no deep buffer — each
half-second segment must arrive before its playout deadline or the
stream stalls. The rate adapter picks a density level per segment from
a throughput prediction (harmonic mean by default; the paper's -PR/-GT
variants multiply in the handover feed's ho_score).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.abr.algorithms import AbrAlgorithm
from repro.apps.abr.prediction import (
    HarmonicMeanPredictor,
    PredictionFeed,
    effective_score,
)
from repro.apps.qoe import WindowComparison, compare_ho_windows
from repro.net.emulation import BandwidthTrace, TraceDrivenLink
from repro.simulate.records import DriveLog

#: The paper's Draco-compressed density ladder (Mbps).
VOLUMETRIC_LEVELS_MBPS = [43.0, 77.0, 110.0, 140.0, 170.0]

SEGMENT_SECONDS = 0.5


@dataclass(frozen=True)
class VolumetricResult:
    """One streaming session's QoE."""

    algorithm: str
    segment_times_s: np.ndarray
    bitrates_mbps: np.ndarray
    latencies_ms: np.ndarray
    stall_s: float
    duration_s: float

    @property
    def mean_bitrate_mbps(self) -> float:
        return float(np.mean(self.bitrates_mbps))

    @property
    def stall_pct(self) -> float:
        return 100.0 * self.stall_s / max(self.duration_s, 1e-9)


class VolumetricStream:
    """Trace-driven real-time volumetric session."""

    def __init__(
        self,
        algorithm: AbrAlgorithm,
        *,
        feed: PredictionFeed | None = None,
        levels_mbps: list[float] | None = None,
        segment_s: float = SEGMENT_SECONDS,
        playout_slack_s: float = 0.15,
    ):
        self._algorithm = algorithm
        self._feed = feed
        self._levels = levels_mbps or list(VOLUMETRIC_LEVELS_MBPS)
        self._segment_s = segment_s
        self._slack_s = playout_slack_s

    def run(self, trace: BandwidthTrace, duration_s: float | None = None) -> VolumetricResult:
        """Stream for ``duration_s`` (default: the trace duration)."""
        link = TraceDrivenLink(trace, loop=True)
        predictor = HarmonicMeanPredictor(history=4)
        total = duration_s if duration_s is not None else trace.duration_s
        t = 0.0
        stall = 0.0
        level = 0
        times, rates, latencies = [], [], []
        while t < total:
            base = predictor.predict_mbps(default=self._levels[0])
            prediction = base
            if self._feed is not None:
                score = effective_score(self._feed.score_at(t % trace.duration_s))
                prediction = base * score
            level = self._algorithm.select(
                self._levels, self._slack_s, level, prediction, self._segment_s
            )
            size_bytes = self._levels[level] * 1e6 / 8.0 * self._segment_s
            download_s = link.download_time_s(size_bytes, t)
            actual_mbps = self._levels[level] * self._segment_s / max(download_s, 1e-6)
            predictor.observe(actual_mbps)
            self._algorithm.observe_error(prediction, actual_mbps)
            times.append(t)
            rates.append(self._levels[level])
            latencies.append(download_s * 1000.0)
            if download_s > self._segment_s + self._slack_s:
                stall += download_s - self._segment_s - self._slack_s
            t += max(download_s, self._segment_s)
        return VolumetricResult(
            algorithm=self._algorithm.name + ("" if self._feed is None else "+feed"),
            segment_times_s=np.array(times),
            bitrates_mbps=np.array(rates),
            latencies_ms=np.array(latencies),
            stall_s=stall,
            duration_s=total,
        )


@dataclass(frozen=True)
class BandImpact:
    """Fig. 6: QoE with vs. without handovers for one band's drive."""

    bitrate: WindowComparison
    latency: WindowComparison

    @property
    def bitrate_reduction_pct(self) -> float:
        """Median-style bitrate drop inside HO windows (positive = worse)."""
        return 100.0 * (1.0 - self.bitrate.mean_ratio)

    @property
    def latency_increase_pct(self) -> float:
        return 100.0 * (self.latency.mean_ratio - 1.0)


def volumetric_band_impact(
    log: DriveLog, algorithm: AbrAlgorithm, *, segment_s: float = SEGMENT_SECONDS
) -> BandImpact:
    """Run the stream over a drive log and compare HO windows (Fig. 6).

    The comparison covers the handovers that interrupt the stream's data
    path. SCG Additions are excluded: they are transitions *into* the
    band under test (capacity jumps upward around them), not mobility
    events within it.
    """
    times, caps = log.capacity_series()
    trace = BandwidthTrace(times_s=times, capacity_mbps=caps)
    session = VolumetricStream(algorithm, segment_s=segment_s)
    result = session.run(trace)
    from repro.rrc.taxonomy import HandoverType

    degrading = [
        h for h in log.handovers if h.ho_type is not HandoverType.SCGA
    ]
    return BandImpact(
        bitrate=compare_ho_windows(
            result.segment_times_s, result.bitrates_mbps, degrading, window_s=1.5
        ),
        latency=compare_ho_windows(
            result.segment_times_s, result.latencies_ms, degrading, window_s=1.5
        ),
    )
