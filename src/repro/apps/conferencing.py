"""Live video conferencing under mobility (§4.1, Fig. 4).

A Zoom-style one-on-one call: constant-rate video (the paper cites
0.6-0.95 Mbps required) at 25 fps. Per tick, packets are lost when the
instantaneous capacity cannot carry the stream (interruptions included),
and latency follows the bearer RTT plus stall backlog drain. The paper's
headline: during handovers the average latency rises 2.26x (up to 14.5x)
and loss 2.24x.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.qoe import WindowComparison, compare_ho_windows
from repro.net.bearer import BearerMode
from repro.net.latency import LatencyModel
from repro.simulate.records import DriveLog


@dataclass(frozen=True)
class ConferencingResult:
    """Per-tick call metrics plus the paper's window comparisons."""

    times_s: np.ndarray
    latency_ms: np.ndarray
    loss_pct: np.ndarray
    latency_comparison: WindowComparison
    loss_comparison: WindowComparison


class ConferencingModel:
    """Trace-driven one-on-one video call."""

    def __init__(
        self,
        *,
        bitrate_mbps: float = 0.9,
        fps: float = 25.0,
        seed: int = 7,
        jitter_ms: float = 3.0,
    ):
        if bitrate_mbps <= 0 or fps <= 0:
            raise ValueError("bitrate and fps must be positive")
        self._bitrate = bitrate_mbps
        self._fps = fps
        self._rng = np.random.default_rng(seed)
        self._latency = LatencyModel(self._rng, jitter_ms=jitter_ms)

    def run(self, log: DriveLog) -> ConferencingResult:
        """Run the call over a drive log's capacity/interruption series."""
        times = np.array([t.time_s for t in log.ticks])
        latency = np.empty(len(times))
        loss = np.empty(len(times))
        backlog_s = 0.0
        dt = log.tick_interval_s or 0.05
        #: Post-outage recovery is application-limited (retransmission,
        #: decoder resync, jitter-buffer re-adaptation), not capacity
        #: limited: the call claws back about this much backlog per
        #: second of clean network.
        recovery_rate = 0.5
        base_loss_pct = 0.5
        for i, tick in enumerate(log.ticks):
            capacity = tick.total_capacity_mbps
            interrupted = capacity <= 1e-9
            if not interrupted and tick.nr_interrupted:
                # Split bearer: the NR share of the media flow is in
                # flight when the SCG procedure halts that leg — those
                # packets arrive late/out of order (partial outage).
                backlog_s += 0.6 * dt
            if interrupted:
                # Media packets queue for the outage duration.
                backlog_s += dt
                loss[i] = min(100.0, 60.0 + 40.0 * min(backlog_s, 1.0))
            else:
                backlog_s = max(backlog_s - dt * recovery_rate, 0.0)
                headroom = capacity / self._bitrate
                congestion = float(np.clip(100.0 * (1.05 - headroom), 0.0, 100.0))
                recovery = min(25.0 * backlog_s, 50.0)
                jitter = float(self._rng.exponential(0.15))
                loss[i] = min(base_loss_pct + congestion + recovery + jitter, 100.0)
            rtt = self._latency.rtt_ms(
                log.bearer if log.bearer is not None else BearerMode.DUAL,
                nr_attached=tick.nr_serving_gci is not None,
                nr_interrupted_remaining_s=backlog_s if tick.nr_interrupted else 0.0,
                lte_interrupted_remaining_s=backlog_s if tick.lte_interrupted else 0.0,
            )
            latency[i] = rtt / 2.0 + backlog_s * 1000.0
        return ConferencingResult(
            times_s=times,
            latency_ms=latency,
            loss_pct=loss,
            latency_comparison=compare_ho_windows(times, latency, log.handovers),
            loss_comparison=compare_ho_windows(times, loss, log.handovers),
        )
