"""Carrier profiles: bands, architecture, policy tuning per operator.

The paper anonymises the three major U.S. carriers as OpX, OpY, OpZ.
What distinguishes them for our purposes (Table 1, §3):

* OpX — NSA only; low-band plus mmWave NR; 5 LTE bands; the carrier used
  for the application QoE, bandwidth-phase, and Prognos datasets.
* OpY — NSA *and* SA; low-band and mid-band NR (no mmWave); 9 LTE bands;
  the carrier behind the T1/T2 duration comparisons (Figs. 8-9).
* OpZ — NSA only; low-band plus mmWave NR; 6 LTE bands.

Each profile carries the carrier's measurement-event configuration — the
thresholds, offsets, and time-to-trigger values that parameterise the
"black-box HO logic" Prognos has to learn. Values differ across carriers
(as the paper observes) but are stable in time (also observed — low
temporal variation, §7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.radio.bands import BandClass, band_by_name
from repro.rrc.events import EventConfig, EventType, MeasurementObject


@dataclass(frozen=True, slots=True)
class NrEventThresholds:
    """NR-side event thresholds for one band class.

    ``ttt_s`` of None falls back to the carrier's ``nr_ttt_s``. Carriers
    configure slower triggers on wide low-band cells (ping-pong
    avoidance) and fast ones on mmWave beams (coverage is tiny, waiting
    costs connectivity).
    """

    b1_dbm: float
    a2_dbm: float
    a3_offset_db: float
    ttt_s: float | None = None


@dataclass(frozen=True, slots=True)
class CarrierProfile:
    """Deployment and policy profile of one carrier."""

    name: str
    lte_bands: tuple[str, ...]
    nr_bands: dict[BandClass, str]
    supports_sa: bool
    #: Fraction of gNBs physically mounted on an eNB tower (§6.3: 5-36%).
    coloc_fraction: float
    # --- LTE-side event tuning ---
    lte_a2_dbm: float = -106.0
    lte_a3_offset_db: float = 3.0
    lte_a5_thr1_dbm: float = -110.0
    lte_a5_thr2_dbm: float = -104.0
    lte_hysteresis_db: float = 1.0
    lte_ttt_s: float = 0.32
    # --- NR-side event tuning per band class ---
    nr_thresholds: dict[BandClass, NrEventThresholds] = field(
        default_factory=lambda: {
            BandClass.LOW: NrEventThresholds(-118.0, -121.0, 6.0, ttt_s=0.48),
            BandClass.MID: NrEventThresholds(-112.0, -116.0, 4.0, ttt_s=0.32),
            BandClass.MMWAVE: NrEventThresholds(-104.0, -108.0, 3.0, ttt_s=0.10),
        }
    )
    nr_hysteresis_db: float = 1.0
    nr_ttt_s: float = 0.16
    # --- timing-model scale knobs (carrier disparities in Figs. 8-9) ---
    t1_scale: float = 1.0
    t2_scale: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.coloc_fraction <= 1.0:
            raise ValueError("co-location fraction must lie in [0, 1]")
        for name in self.lte_bands:
            band_by_name(name)  # validates
        for name in self.nr_bands.values():
            band_by_name(name)

    def nr_band_name(self, band_class: BandClass) -> str:
        try:
            return self.nr_bands[band_class]
        except KeyError:
            raise ValueError(
                f"{self.name} deploys no {band_class.value} NR layer"
            ) from None

    def lte_event_configs(self) -> list[EventConfig]:
        """Events configured on the LTE measurement object."""
        return [
            EventConfig(
                EventType.A2,
                MeasurementObject.LTE,
                threshold_dbm=self.lte_a2_dbm,
                hysteresis_db=self.lte_hysteresis_db,
                time_to_trigger_s=self.lte_ttt_s,
            ),
            EventConfig(
                EventType.A3,
                MeasurementObject.LTE,
                offset_db=self.lte_a3_offset_db,
                hysteresis_db=self.lte_hysteresis_db,
                time_to_trigger_s=self.lte_ttt_s,
                intra_frequency_only=True,
            ),
            EventConfig(
                EventType.A5,
                MeasurementObject.LTE,
                threshold_dbm=self.lte_a5_thr1_dbm,
                threshold2_dbm=self.lte_a5_thr2_dbm,
                hysteresis_db=self.lte_hysteresis_db,
                time_to_trigger_s=self.lte_ttt_s,
            ),
        ]

    def nr_event_configs(
        self, band_class: BandClass, standalone: bool = False
    ) -> list[EventConfig]:
        """Events configured on the NR measurement object for a band class.

        Under NSA the A3 measurement object is scoped to the serving
        gNB's cells (no direct inter-gNB handover exists to act on the
        rest); SA *does* support direct inter-gNB handovers, so its A3
        covers all neighbours.
        """
        thresholds = self.nr_thresholds[band_class]
        ttt = thresholds.ttt_s if thresholds.ttt_s is not None else self.nr_ttt_s
        return [
            EventConfig(
                EventType.B1,
                MeasurementObject.NR,
                threshold_dbm=thresholds.b1_dbm,
                hysteresis_db=self.nr_hysteresis_db,
                time_to_trigger_s=ttt,
                only_when_detached=True,
            ),
            EventConfig(
                EventType.A2,
                MeasurementObject.NR,
                threshold_dbm=thresholds.a2_dbm,
                hysteresis_db=self.nr_hysteresis_db,
                time_to_trigger_s=ttt,
            ),
            EventConfig(
                EventType.A3,
                MeasurementObject.NR,
                offset_db=thresholds.a3_offset_db,
                hysteresis_db=self.nr_hysteresis_db,
                time_to_trigger_s=ttt,
                intra_node_only=not standalone,
            ),
        ]

    def event_configs(
        self, band_class: BandClass | None, standalone: bool = False
    ) -> list[EventConfig]:
        """Full event set for a UE attached to this carrier.

        Args:
            band_class: NR layer present in the current area, or None for
                LTE-only coverage (NR events are still configured — B1 is
                how the network discovers NR coverage returning).
            standalone: SA attachments measure only the NR object (there
                is no LTE leg to configure events against).
        """
        if standalone:
            return self.nr_event_configs(band_class or BandClass.LOW, standalone=True)
        configs = self.lte_event_configs()
        configs.extend(self.nr_event_configs(band_class or BandClass.LOW))
        return configs


OPX = CarrierProfile(
    name="OpX",
    lte_bands=("B2", "B4", "B12", "B30", "B66"),
    nr_bands={BandClass.LOW: "n5", BandClass.MMWAVE: "n260"},
    supports_sa=False,
    coloc_fraction=0.36,
    lte_ttt_s=0.32,
    nr_ttt_s=0.16,
)

OPY = CarrierProfile(
    name="OpY",
    lte_bands=("B2", "B4", "B12", "B25", "B41", "B66", "B71", "B13", "B30"),
    nr_bands={BandClass.LOW: "n71", BandClass.MID: "n41"},
    supports_sa=True,
    coloc_fraction=0.20,
    lte_a3_offset_db=2.0,
    lte_ttt_s=0.24,
    nr_ttt_s=0.10,
    t1_scale=1.05,
)

OPZ = CarrierProfile(
    name="OpZ",
    lte_bands=("B2", "B4", "B13", "B66", "B12", "B41"),
    nr_bands={BandClass.LOW: "n5", BandClass.MMWAVE: "n261"},
    supports_sa=False,
    coloc_fraction=0.05,
    lte_a3_offset_db=4.0,
    lte_ttt_s=0.48,
    nr_ttt_s=0.20,
    t2_scale=1.08,
)

CARRIERS: dict[str, CarrierProfile] = {c.name: c for c in (OPX, OPY, OPZ)}


def carrier_by_name(name: str) -> CarrierProfile:
    """Look up one of the three study carriers by name."""
    try:
        return CARRIERS[name]
    except KeyError:
        raise KeyError(f"unknown carrier {name!r}; known: {sorted(CARRIERS)}") from None
