"""Deployment generation: laying towers along a drive route.

A drive test crosses heterogeneous coverage: rural stretches with sparse
low-band, suburbs with mid-band, downtown cores with mmWave clusters.
We model a deployment as a sequence of *segments* along the route, each
with its own LTE anchor grid and (optionally) an NR layer of a given band
class, in NSA or SA flavour. Inter-site distances are jittered so cell
edges (and hence handover points) are not perfectly periodic, and a
configurable fraction of gNBs is snapped onto eNB towers with a shared
PCI — the co-location structure analysed in §6.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.geo.point import Point
from repro.geo.polyline import Polyline
from repro.radio.bands import Band, BandClass, RadioAccessTechnology, band_by_name
from repro.ran.carrier import CarrierProfile
from repro.ran.cells import (
    Cell,
    DEFAULT_EIRP_DBM,
    LTE_PCI_COUNT,
    NR_PCI_COUNT,
    Tower,
)

#: Cells per gNB node: sub-6 gNBs host a couple of sectors; mmWave gNBs
#: expose several narrow beams, each of which the UE sees as a cell.
CELLS_PER_GNB: dict[BandClass, int] = {
    BandClass.LOW: 2,
    BandClass.MID: 2,
    BandClass.MMWAVE: 3,
}


@dataclass(frozen=True, slots=True)
class SegmentConfig:
    """Coverage description for one stretch of the route.

    Attributes:
        start_m / end_m: arc-length interval of the route this segment
            covers.
        lte_isd_m: inter-site distance of the LTE anchor grid.
        nr_band_class: NR layer present here (None = LTE-only coverage).
        nr_isd_m: inter-*cell* distance of the NR layer.
        standalone: True for SA 5G coverage (no LTE anchor involvement in
            mobility; the NR leg is the master).
        urban: toggles fading/shadowing scenario defaults.
        lateral_offset_m: tower standoff from the route.
        jitter: fractional ISD jitter (uniform +-).
        eirp_bonus_db: added to every cell's EIRP in this segment (rural
            macros run higher power / taller towers than the defaults,
            which are tuned for suburban grids).
        nr_eirp_bonus_db: NR-layer override for the EIRP bonus (None =
            same as ``eirp_bonus_db``); rural LTE anchors often run much
            hotter than the co-deployed NR layer.
        cells_per_gnb: override for the gNB sectorisation (None = the
            band-class default; 1 models rural single-panel sites, which
            eliminates intra-gNB SCG Modifications there).
    """

    start_m: float
    end_m: float
    lte_isd_m: float = 600.0
    nr_band_class: BandClass | None = None
    nr_isd_m: float = 1400.0
    standalone: bool = False
    urban: bool = False
    lateral_offset_m: float = 60.0
    jitter: float = 0.15
    eirp_bonus_db: float = 0.0
    nr_eirp_bonus_db: float | None = None
    cells_per_gnb: int | None = None

    def __post_init__(self) -> None:
        if self.end_m <= self.start_m:
            raise ValueError("segment end must exceed start")
        if self.lte_isd_m <= 0 or self.nr_isd_m <= 0:
            raise ValueError("inter-site distances must be positive")
        if self.cells_per_gnb is not None and self.cells_per_gnb < 1:
            raise ValueError("cells_per_gnb must be at least 1")
        if not 0.0 <= self.jitter < 0.5:
            raise ValueError("jitter fraction must lie in [0, 0.5)")

    @property
    def length_m(self) -> float:
        return self.end_m - self.start_m


class Deployment:
    """An immutable set of towers/cells with spatial lookup."""

    _GRID_M = 500.0

    def __init__(self, carrier: CarrierProfile, towers: list[Tower], segments: list[SegmentConfig]):
        self.carrier = carrier
        self.towers = list(towers)
        self.segments = list(segments)
        self.cells: list[Cell] = [cell for tower in towers for cell in tower.cells]
        self._by_gci = {cell.gci: cell for cell in self.cells}
        self._grid: dict[tuple[int, int], list[Cell]] = {}
        for cell in self.cells:
            key = self._grid_key(cell.position)
            self._grid.setdefault(key, []).append(cell)
        self._max_radius = max((c.audible_radius_m for c in self.cells), default=0.0)
        # Flattened cell arrays in (grid key, insertion) order so audibility
        # queries are one vectorized pass instead of a python grid scan.
        # np.nonzero on this layout reproduces the grid scan's result order.
        flat: list[Cell] = []
        flat_keys: list[tuple[int, int]] = []
        for key in sorted(self._grid):
            for cell in self._grid[key]:
                flat.append(cell)
                flat_keys.append(key)
        self._flat_cells = flat
        self._flat_gx = np.array([k[0] for k in flat_keys], dtype=np.int64)
        self._flat_gy = np.array([k[1] for k in flat_keys], dtype=np.int64)
        self._flat_x = np.array([c.position.x for c in flat], dtype=float)
        self._flat_y = np.array([c.position.y for c in flat], dtype=float)
        self._flat_r = np.array([c.audible_radius_m for c in flat], dtype=float)

    def _grid_key(self, point: Point) -> tuple[int, int]:
        return (int(point.x // self._GRID_M), int(point.y // self._GRID_M))

    def cell(self, gci: int) -> Cell:
        return self._by_gci[gci]

    def cells_of_node(self, node_id: int) -> list[Cell]:
        return [c for c in self.cells if c.node_id == node_id]

    def segment_at(self, arc_length_m: float) -> SegmentConfig | None:
        """The segment covering a given arc length, if any."""
        for segment in self.segments:
            if segment.start_m <= arc_length_m < segment.end_m:
                return segment
        return None

    def audible_cells(self, point: Point) -> list[Cell]:
        """Cells whose audible radius covers ``point``.

        Result order is (grid key, insertion) — what a row-major scan of
        the grid neighbourhood would visit.
        """
        if not self.cells:
            return []
        reach = int(math.ceil(self._max_radius / self._GRID_M))
        cx, cy = self._grid_key(point)
        near = (
            (np.abs(self._flat_gx - cx) <= reach)
            & (np.abs(self._flat_gy - cy) <= reach)
            & (
                np.hypot(self._flat_x - point.x, self._flat_y - point.y)
                <= self._flat_r
            )
        )
        cells = self._flat_cells
        return [cells[i] for i in np.nonzero(near)[0].tolist()]

    @property
    def colocated_gnb_fraction(self) -> float:
        """Fraction of gNB-hosting towers that also host an eNB."""
        gnb_towers = [t for t in self.towers if t.has_gnb]
        if not gnb_towers:
            return 0.0
        return sum(t.is_colocated_site for t in gnb_towers) / len(gnb_towers)


class DeploymentBuilder:
    """Builds a :class:`Deployment` for one carrier along a route."""

    def __init__(self, route: Polyline, carrier: CarrierProfile, rng: np.random.Generator):
        self._route = route
        self._carrier = carrier
        self._rng = rng
        self._segments: list[SegmentConfig] = []

    def add_segment(self, segment: SegmentConfig) -> "DeploymentBuilder":
        if segment.end_m > self._route.length + 1e-6:
            raise ValueError(
                f"segment [{segment.start_m}, {segment.end_m}] exceeds route "
                f"length {self._route.length:.0f} m"
            )
        if segment.nr_band_class is not None:
            self._carrier.nr_band_name(segment.nr_band_class)  # validates support
        if segment.standalone and not self._carrier.supports_sa:
            raise ValueError(f"{self._carrier.name} does not support SA 5G")
        self._segments.append(segment)
        return self

    def build(self) -> Deployment:
        if not self._segments:
            raise ValueError("deployment needs at least one segment")
        towers: list[Tower] = []
        next_gci = 0
        next_node = 0
        next_tower = 0

        for segment in self._segments:
            # --- LTE anchor grid (skipped for SA-only segments). ---
            lte_towers: list[Tower] = []
            if not segment.standalone:
                positions = self._site_positions(segment, segment.lte_isd_m)
                lte_band_cycle = self._lte_band_cycle()
                for i, arc in enumerate(positions):
                    point = self._tower_point(arc, segment)
                    tower = Tower(next_tower, point, self._carrier.name)
                    next_tower += 1
                    band = lte_band_cycle[i % len(lte_band_cycle)]
                    pci = self._pci(next_gci, LTE_PCI_COUNT)
                    tower.cells.append(
                        Cell(
                            gci=next_gci,
                            pci=pci,
                            band=band,
                            node_id=next_node,
                            tower_id=tower.tower_id,
                            position=point,
                            eirp_dbm=DEFAULT_EIRP_DBM[band.band_class]
                            + segment.eirp_bonus_db,
                            carrier=self._carrier.name,
                        )
                    )
                    next_gci += 1
                    next_node += 1
                    lte_towers.append(tower)
                towers.extend(lte_towers)

            # --- NR layer. ---
            if segment.nr_band_class is not None:
                band = band_by_name(self._carrier.nr_band_name(segment.nr_band_class))
                cell_positions = self._site_positions(segment, segment.nr_isd_m)
                per_node = segment.cells_per_gnb or CELLS_PER_GNB[segment.nr_band_class]
                for first in range(0, len(cell_positions), per_node):
                    node_id = next_node
                    next_node += 1
                    node_positions = cell_positions[first : first + per_node]
                    colocate = (
                        not segment.standalone
                        and lte_towers
                        and self._rng.random() < self._carrier.coloc_fraction
                    )
                    host_tower: Tower | None = None
                    shared_pci: int | None = None
                    if colocate:
                        anchor_point = self._tower_point(node_positions[0], segment)
                        host_tower = min(
                            lte_towers,
                            key=lambda t: t.position.distance_to(anchor_point),
                        )
                        shared_pci = host_tower.cells[0].pci
                    for j, arc in enumerate(node_positions):
                        if host_tower is not None and j == 0:
                            tower = host_tower
                            point = host_tower.position
                            pci = shared_pci if shared_pci is not None else self._pci(next_gci, NR_PCI_COUNT)
                        else:
                            point = self._tower_point(arc, segment)
                            tower = Tower(next_tower, point, self._carrier.name)
                            next_tower += 1
                            towers.append(tower)
                            pci = self._pci(next_gci, NR_PCI_COUNT)
                        tower.cells.append(
                            Cell(
                                gci=next_gci,
                                pci=pci,
                                band=band,
                                node_id=node_id,
                                tower_id=tower.tower_id,
                                position=point,
                                eirp_dbm=DEFAULT_EIRP_DBM[band.band_class]
                                + (
                                    segment.nr_eirp_bonus_db
                                    if segment.nr_eirp_bonus_db is not None
                                    else segment.eirp_bonus_db
                                ),
                                carrier=self._carrier.name,
                            )
                        )
                        next_gci += 1
        return Deployment(self._carrier, towers, self._segments)

    def _lte_band_cycle(self) -> list[Band]:
        """Alternate LTE towers between the carrier's two main mid bands.

        Staggering bands along the route makes successive LTE handovers a
        mix of intra-frequency (A3 → LTEH) and inter-frequency
        (A2+A5 → LTEH) — the pattern diversity the paper's decision
        learner example [A2, A5, LTEH_inter] reflects.
        """
        mids = [
            band_by_name(name)
            for name in self._carrier.lte_bands
            if band_by_name(name).band_class is BandClass.MID
        ]
        if not mids:
            mids = [band_by_name(self._carrier.lte_bands[0])]
        return mids[:2] if len(mids) >= 2 else mids

    def _site_positions(self, segment: SegmentConfig, isd_m: float) -> list[float]:
        """Jittered arc-length positions of sites within a segment."""
        count = max(int(round(segment.length_m / isd_m)), 1)
        positions = []
        for i in range(count):
            nominal = segment.start_m + (i + 0.5) * segment.length_m / count
            jitter = self._rng.uniform(-segment.jitter, segment.jitter) * isd_m
            arc = min(max(nominal + jitter, segment.start_m), segment.end_m - 1.0)
            positions.append(arc)
        return sorted(positions)

    def _tower_point(self, arc_m: float, segment: SegmentConfig) -> Point:
        side = 1.0 if self._rng.random() < 0.5 else -1.0
        lateral = side * self._rng.uniform(0.5, 1.0) * segment.lateral_offset_m
        return self._route.offset_point(arc_m, lateral)

    @staticmethod
    def _pci(gci: int, limit: int) -> int:
        """Deterministic PCI assignment with neighbour distinctness.

        Multiplying by a constant co-prime with the PCI space spreads
        consecutive cells far apart in PCI space, so adjacent cells never
        collide (mod-504/1008 collisions only recur after hundreds of
        cells, farther than any audible radius).
        """
        return (gci * 37 + 11) % limit
