"""Radio access network substrate: cells, towers, carriers, deployments.

The paper's three carriers (anonymised OpX / OpY / OpZ) differ in which
bands they deploy, whether they run NSA and/or SA, how dense their grids
are, and how their handover policies are tuned. This package models all
of that: cell/tower/node identity (PCI, eNB/gNB grouping, co-location),
per-carrier profiles, and deployment generators that lay towers along a
drive route the way the paper's drive tests encountered them.
"""

from repro.ran.cells import Cell, Tower, NodeKind
from repro.ran.deployment import (
    Deployment,
    SegmentConfig,
    DeploymentBuilder,
)
from repro.ran.carrier import (
    CarrierProfile,
    OPX,
    OPY,
    OPZ,
    CARRIERS,
    carrier_by_name,
)

__all__ = [
    "CARRIERS",
    "CarrierProfile",
    "Cell",
    "Deployment",
    "DeploymentBuilder",
    "NodeKind",
    "OPX",
    "OPY",
    "OPZ",
    "SegmentConfig",
    "Tower",
    "carrier_by_name",
]
