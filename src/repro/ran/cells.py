"""Cells, towers, and base-station nodes.

Identity matters a great deal in the paper's analyses:

* PCI (physical cell identity) is what the UE-side logs see; the paper
  estimates coverage by "distance travelled on the same PCI" (§6.1) and
  detects eNB/gNB co-location by 4G and 5G PCIs matching (§6.3).
* The eNB/gNB *node* grouping determines the procedure type: an NR cell
  change within one gNB is an SCG Modification, across gNBs it must go
  through SCG Change (§2, Fig. 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.geo.point import Point
from repro.radio.bands import Band, BandClass, RadioAccessTechnology

#: PCI ranges per 3GPP: LTE has 504 PCIs, NR has 1008.
LTE_PCI_COUNT = 504
NR_PCI_COUNT = 1008

#: Per-band-class effective isotropic radiated power (dBm). Macro
#: low-band sites radiate tens of watts through modest antenna gain;
#: mmWave sites compensate tiny cells with high beamforming gain.
DEFAULT_EIRP_DBM: dict[BandClass, float] = {
    BandClass.LOW: 58.0,
    BandClass.MID: 72.0,
    BandClass.MMWAVE: 78.0,
}

#: Audibility cutoff radius (metres) by band class — beyond this a cell
#: is never measured (keeps the per-tick cell scan small).
AUDIBLE_RADIUS_M: dict[BandClass, float] = {
    BandClass.LOW: 7000.0,
    BandClass.MID: 3500.0,
    BandClass.MMWAVE: 600.0,
}


class NodeKind(enum.Enum):
    """Base-station node type."""

    ENB = "eNB"
    GNB = "gNB"


@dataclass(frozen=True, slots=True)
class Cell:
    """One cell (antenna/beam) of a base-station node.

    Attributes:
        gci: globally unique cell index within the deployment.
        pci: physical cell identity (mod 504 for LTE, mod 1008 for NR).
        band: the radio band the cell transmits on.
        node_id: identity of the owning eNB/gNB (SCGM vs SCGC boundary).
        tower_id: physical tower the antenna hangs on (co-location).
        position: antenna location in the planar frame.
        eirp_dbm: effective radiated power.
        carrier: owning carrier name ("OpX"/"OpY"/"OpZ").
    """

    gci: int
    pci: int
    band: Band
    node_id: int
    tower_id: int
    position: Point
    eirp_dbm: float
    carrier: str

    def __post_init__(self) -> None:
        limit = LTE_PCI_COUNT if self.rat is RadioAccessTechnology.LTE else NR_PCI_COUNT
        if not 0 <= self.pci < limit:
            raise ValueError(f"PCI {self.pci} out of range for {self.rat}")

    def __hash__(self) -> int:
        # Cells are keyed into dicts on every simulator tick; hashing the
        # full field tuple (bands, points, enums) dominated profiles. The
        # GCI is unique per deployment, so it is a sufficient hash.
        return hash(self.gci)

    @property
    def rat(self) -> RadioAccessTechnology:
        return self.band.rat

    @property
    def node_kind(self) -> NodeKind:
        return NodeKind.GNB if self.rat is RadioAccessTechnology.NR else NodeKind.ENB

    @property
    def band_class(self) -> BandClass:
        return self.band.band_class

    @property
    def audible_radius_m(self) -> float:
        return AUDIBLE_RADIUS_M[self.band_class]

    def distance_to(self, point: Point) -> float:
        return self.position.distance_to(point)


@dataclass(slots=True)
class Tower:
    """A physical tower that may host an eNB, a gNB, or both.

    When both are present the deployment generator assigns them the same
    PCI value — the co-location heuristic the paper exploits in §6.3.
    """

    tower_id: int
    position: Point
    carrier: str
    cells: list[Cell] = field(default_factory=list)

    @property
    def has_enb(self) -> bool:
        return any(c.node_kind is NodeKind.ENB for c in self.cells)

    @property
    def has_gnb(self) -> bool:
        return any(c.node_kind is NodeKind.GNB for c in self.cells)

    @property
    def is_colocated_site(self) -> bool:
        """True when the tower hosts both an eNB and a gNB."""
        return self.has_enb and self.has_gnb
