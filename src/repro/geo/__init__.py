"""Geometric primitives used across the simulator.

The paper's analyses are inherently spatial: cell coverage footprints
(Section 6.1), convex-hull based eNB/gNB co-location detection
(Section 6.3), and trajectory-driven handover frequency (Section 5.1).
This package provides the small, dependency-light geometry layer those
analyses are built on.
"""

from repro.geo.point import Point, distance, heading, interpolate
from repro.geo.polyline import Polyline
from repro.geo.hull import convex_hull, hulls_overlap, polygon_area

__all__ = [
    "Point",
    "Polyline",
    "convex_hull",
    "distance",
    "heading",
    "hulls_overlap",
    "interpolate",
    "polygon_area",
]
