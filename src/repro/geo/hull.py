"""Convex hulls and hull overlap tests.

Section 6.3 of the paper identifies eNB/gNB co-location by building convex
hulls over the geolocations at which each PCI was observed and testing the
4G hull against the 5G hull for overlap.  We implement the same method:
Andrew's monotone chain for hull construction and a separating-axis test
for convex polygon intersection.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.geo.point import Point


def _cross(o: Point, a: Point, b: Point) -> float:
    """Z component of (a - o) x (b - o)."""
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)


def convex_hull(points: Iterable[Point]) -> list[Point]:
    """Convex hull (CCW, no repeated endpoint) via Andrew's monotone chain.

    Degenerate inputs (fewer than 3 distinct points, collinear sets) return
    the distinct points in sorted order, which downstream overlap tests
    handle as segments/points.
    """
    distinct = sorted(set((p.x, p.y) for p in points))
    pts = [Point(x, y) for x, y in distinct]
    if len(pts) <= 2:
        return pts

    lower: list[Point] = []
    for p in pts:
        while len(lower) >= 2 and _cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[Point] = []
    for p in reversed(pts):
        while len(upper) >= 2 and _cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:  # all points collinear
        return pts
    return hull


def polygon_area(polygon: Sequence[Point]) -> float:
    """Unsigned area via the shoelace formula; 0 for degenerate polygons."""
    if len(polygon) < 3:
        return 0.0
    total = 0.0
    for i, p in enumerate(polygon):
        q = polygon[(i + 1) % len(polygon)]
        total += p.x * q.y - q.x * p.y
    return abs(total) / 2.0


def _project(polygon: Sequence[Point], axis: tuple[float, float]) -> tuple[float, float]:
    dots = [p.x * axis[0] + p.y * axis[1] for p in polygon]
    return min(dots), max(dots)


def _axes(polygon: Sequence[Point]) -> list[tuple[float, float]]:
    axes = []
    n = len(polygon)
    for i, p in enumerate(polygon):
        q = polygon[(i + 1) % n]
        edge = (q.x - p.x, q.y - p.y)
        axes.append((-edge[1], edge[0]))
    return axes


def hulls_overlap(a: Sequence[Point], b: Sequence[Point]) -> bool:
    """True if the two convex polygons intersect (separating-axis theorem).

    Degenerate hulls (points or segments) are handled: a point inside the
    other hull or overlapping projections on all axes count as overlap.
    """
    if not a or not b:
        return False
    polys = [list(a), list(b)]
    # For degenerate shapes, SAT still works as long as we gather axes from
    # whichever polygon has edges; for two single points compare directly.
    if len(polys[0]) == 1 and len(polys[1]) == 1:
        return polys[0][0] == polys[1][0]
    axes: list[tuple[float, float]] = []
    for poly in polys:
        if len(poly) >= 2:
            axes.extend(_axes(poly))
    for axis in axes:
        if axis == (0.0, 0.0):
            continue
        a_min, a_max = _project(polys[0], axis)
        b_min, b_max = _project(polys[1], axis)
        # Relative tolerance: hull construction rounds cross products, so
        # a boundary point can land a few ulps outside its own hull; an
        # exact comparison would call that a separation.
        tol = 1e-12 * max(abs(a_min), abs(a_max), abs(b_min), abs(b_max))
        if a_max < b_min - tol or b_max < a_min - tol:
            return False
    return True
