"""Polylines: routes that trajectories and deployments are anchored to.

A drive test is a vehicle moving along a route; towers are placed relative
to the same route. ``Polyline`` supports arc-length parameterisation so
both sides agree on "distance along the route".
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Iterable, Sequence

from repro.geo.point import Point, interpolate


class Polyline:
    """An ordered sequence of waypoints with arc-length addressing."""

    def __init__(self, waypoints: Iterable[Point]):
        points = list(waypoints)
        if len(points) < 2:
            raise ValueError("a polyline needs at least two waypoints")
        self._points: Sequence[Point] = points
        cumulative = [0.0]
        for prev, nxt in zip(points, points[1:]):
            cumulative.append(cumulative[-1] + prev.distance_to(nxt))
        self._cumulative = cumulative

    @property
    def length(self) -> float:
        """Total arc length in metres."""
        return self._cumulative[-1]

    @property
    def waypoints(self) -> Sequence[Point]:
        return self._points

    def point_at(self, arc_length: float) -> Point:
        """Return the point at ``arc_length`` metres along the route.

        Values are clamped to the route ends, which lets callers step a
        vehicle slightly past the nominal end without special-casing.
        """
        s = min(max(arc_length, 0.0), self.length)
        # Find the segment containing s.
        index = bisect.bisect_right(self._cumulative, s) - 1
        index = min(index, len(self._points) - 2)
        seg_start = self._cumulative[index]
        seg_len = self._cumulative[index + 1] - seg_start
        if seg_len <= 0.0:
            return self._points[index]
        fraction = (s - seg_start) / seg_len
        return interpolate(self._points[index], self._points[index + 1], fraction)

    def heading_at(self, arc_length: float) -> float:
        """Heading (radians) of the segment containing ``arc_length``."""
        s = min(max(arc_length, 0.0), self.length)
        index = bisect.bisect_right(self._cumulative, s) - 1
        index = min(index, len(self._points) - 2)
        a, b = self._points[index], self._points[index + 1]
        return math.atan2(b.y - a.y, b.x - a.x)

    def offset_point(self, arc_length: float, lateral: float) -> Point:
        """Point at ``arc_length`` displaced ``lateral`` metres to the left.

        Used to place towers at a standoff from the roadway.
        """
        base = self.point_at(arc_length)
        theta = self.heading_at(arc_length)
        return Point(
            base.x - lateral * math.sin(theta),
            base.y + lateral * math.cos(theta),
        )

    @classmethod
    def straight(cls, length_m: float, origin: Point = Point(0.0, 0.0)) -> "Polyline":
        """A straight west-to-east route — the freeway abstraction."""
        if length_m <= 0:
            raise ValueError("route length must be positive")
        return cls([origin, Point(origin.x + length_m, origin.y)])

    @classmethod
    def rectangle(cls, width_m: float, height_m: float) -> "Polyline":
        """A closed rectangular loop — the city / walking loop abstraction."""
        if width_m <= 0 or height_m <= 0:
            raise ValueError("loop dimensions must be positive")
        return cls(
            [
                Point(0.0, 0.0),
                Point(width_m, 0.0),
                Point(width_m, height_m),
                Point(0.0, height_m),
                Point(0.0, 0.0),
            ]
        )
