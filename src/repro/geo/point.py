"""Planar points and basic vector helpers.

All simulator coordinates are planar metres (a local tangent projection).
Driving distances in the paper are a few km between handovers, so earth
curvature is irrelevant; a flat local frame keeps every downstream model
(path loss, coverage diameters, hull intersection) simple and exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the local planar frame, in metres."""

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def scaled(self, factor: float) -> "Point":
        """Return this point scaled about the origin."""
        return Point(self.x * factor, self.y * factor)

    def norm(self) -> float:
        """Euclidean distance from the origin."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> tuple[float, float]:
        return (self.x, self.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points in metres."""
    return a.distance_to(b)


def heading(a: Point, b: Point) -> float:
    """Heading (radians, CCW from +x axis) of travel from ``a`` to ``b``."""
    return math.atan2(b.y - a.y, b.x - a.x)


def interpolate(a: Point, b: Point, fraction: float) -> Point:
    """Linearly interpolate between ``a`` (fraction 0) and ``b`` (fraction 1)."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"interpolation fraction {fraction} outside [0, 1]")
    return Point(a.x + (b.x - a.x) * fraction, a.y + (b.y - a.y) * fraction)
