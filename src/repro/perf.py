"""Lightweight perf-counter spans for the throughput benches.

The benches each carried an ad-hoc ``_timed`` helper around
``time.perf_counter``. :class:`Timer` centralises that: named spans
accumulate wall-clock seconds in :attr:`Timer.spans`, and setting
``REPRO_PERF=1`` echoes every span as it closes, which makes a bench's
internal phase breakdown visible without editing it.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


class Timer:
    """Collects named perf-counter spans.

    Args:
        echo: print each span as it closes. None reads ``REPRO_PERF``
            (``1`` enables echoing).
    """

    def __init__(self, *, echo: bool | None = None):
        if echo is None:
            echo = os.environ.get("REPRO_PERF", "") == "1"
        self.echo = echo
        #: Accumulated seconds per span name (re-entering a name adds).
        self.spans: dict[str, float] = {}
        #: Elapsed seconds of the most recently closed span.
        self.last_s = 0.0

    @contextmanager
    def span(self, name: str) -> Iterator["Timer"]:
        """Time a ``with`` block under ``name``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.last_s = time.perf_counter() - start
            self.spans[name] = self.spans.get(name, 0.0) + self.last_s
            if self.echo:
                print(f"[perf] {name}: {self.last_s:.3f}s", flush=True)

    def timed(self, name: str, fn: Callable[[], T]) -> tuple[float, T]:
        """Run ``fn`` under ``span(name)``; returns (elapsed_s, result)."""
        with self.span(name):
            result = fn()
        return self.last_s, result

    def __getitem__(self, name: str) -> float:
        return self.spans[name]
