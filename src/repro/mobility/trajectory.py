"""Trajectories: time-stamped positions along a route."""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.geo.point import Point
from repro.geo.polyline import Polyline


@dataclass(frozen=True, slots=True)
class TrajectorySample:
    """One tick of UE motion.

    Attributes:
        time_s: simulation time.
        arc_m: cumulative distance travelled along the route (this also
            indexes the shadowing fields — loops keep increasing it).
        position: planar position.
        speed_mps: instantaneous speed.
    """

    time_s: float
    arc_m: float
    position: Point
    speed_mps: float


class Trajectory:
    """A realised trajectory: a sequence of samples at the logging rate."""

    def __init__(self, samples: Sequence[TrajectorySample], route: Polyline):
        if not samples:
            raise ValueError("a trajectory needs at least one sample")
        self._samples = list(samples)
        self.route = route

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[TrajectorySample]:
        return iter(self._samples)

    def __getitem__(self, index: int) -> TrajectorySample:
        return self._samples[index]

    @property
    def duration_s(self) -> float:
        return self._samples[-1].time_s - self._samples[0].time_s

    @property
    def distance_m(self) -> float:
        return self._samples[-1].arc_m - self._samples[0].arc_m

    @property
    def mean_speed_mps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.distance_m / self.duration_s

    @property
    def tick_interval_s(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        return self._samples[1].time_s - self._samples[0].time_s
