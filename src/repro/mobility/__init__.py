"""Mobility models: how the measurement UE moves.

The paper's dataset mixes freeway driving (~130 km/h stretches), city
driving (slower, with intersection stops), and walking loops (the D1/D2
Prognos datasets and the iPerf bandwidth walks). Each model produces a
:class:`Trajectory` — time-stamped positions along a route at the
logging rate (20 Hz in the paper).
"""

from repro.mobility.trajectory import Trajectory, TrajectorySample
from repro.mobility.models import (
    ConstantSpeedModel,
    FreewayDriveModel,
    CityDriveModel,
    WalkingLoopModel,
)

__all__ = [
    "CityDriveModel",
    "ConstantSpeedModel",
    "FreewayDriveModel",
    "Trajectory",
    "TrajectorySample",
    "WalkingLoopModel",
]
