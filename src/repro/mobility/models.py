"""Concrete mobility models.

Speed dynamics use a mean-reverting (Ornstein-Uhlenbeck) process so
velocities wander realistically without drifting off to absurd values;
the city model adds intersection stops, and the walking model loops a
closed route the way the paper's D1/D2 collection walks did.

Route positions for loops wrap around the polyline, while the cumulative
``arc_m`` keeps increasing — downstream shadowing fields need a
monotonically increasing track coordinate.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geo.polyline import Polyline
from repro.mobility.trajectory import Trajectory, TrajectorySample

#: The paper logs at 20 Hz.
DEFAULT_TICK_S = 0.05


class ConstantSpeedModel:
    """Moves at exactly the given speed — useful for tests and calibration."""

    def __init__(self, speed_mps: float, tick_s: float = DEFAULT_TICK_S):
        if speed_mps <= 0:
            raise ValueError("speed must be positive")
        if tick_s <= 0:
            raise ValueError("tick interval must be positive")
        self.speed_mps = speed_mps
        self.tick_s = tick_s

    def generate(self, route: Polyline, duration_s: float | None = None) -> Trajectory:
        """Traverse the route once (or for ``duration_s`` if given, looping)."""
        loop = duration_s is not None
        if duration_s is None:
            duration_s = route.length / self.speed_mps
        samples = []
        ticks = int(duration_s / self.tick_s) + 1
        for i in range(ticks):
            t = i * self.tick_s
            arc = self.speed_mps * t
            route_pos = arc % route.length if loop else min(arc, route.length)
            samples.append(
                TrajectorySample(t, arc, route.point_at(route_pos), self.speed_mps)
            )
        return Trajectory(samples, route)


class _OUSpeed:
    """Mean-reverting speed process clamped to [floor, ceiling]."""

    def __init__(
        self,
        mean_mps: float,
        sigma_mps: float,
        reversion_s: float,
        rng: np.random.Generator,
        floor_mps: float = 0.0,
    ):
        self._mean = mean_mps
        self._sigma = sigma_mps
        self._theta = 1.0 / reversion_s
        self._rng = rng
        self._floor = floor_mps
        self._ceiling = mean_mps + 4.0 * sigma_mps
        self.value = mean_mps

    def step(self, dt: float) -> float:
        drift = self._theta * (self._mean - self.value) * dt
        diffusion = self._sigma * math.sqrt(2.0 * self._theta * dt)
        self.value += drift + float(self._rng.normal(0.0, diffusion))
        self.value = min(max(self.value, self._floor), self._ceiling)
        return self.value


class FreewayDriveModel:
    """Freeway driving: high mean speed with mild fluctuation, no stops."""

    def __init__(
        self,
        rng: np.random.Generator,
        mean_speed_mps: float = 36.0,
        speed_sigma_mps: float = 2.5,
        tick_s: float = DEFAULT_TICK_S,
    ):
        if mean_speed_mps <= 0:
            raise ValueError("mean speed must be positive")
        self._rng = rng
        self._mean = mean_speed_mps
        self._sigma = speed_sigma_mps
        self.tick_s = tick_s

    def generate(self, route: Polyline) -> Trajectory:
        """Drive the route start-to-end once."""
        speed = _OUSpeed(self._mean, self._sigma, 30.0, self._rng, floor_mps=15.0)
        samples = []
        t, arc = 0.0, 0.0
        while arc < route.length:
            samples.append(
                TrajectorySample(t, arc, route.point_at(arc), speed.value)
            )
            arc += speed.step(self.tick_s) * self.tick_s
            t += self.tick_s
        samples.append(TrajectorySample(t, route.length, route.point_at(route.length), speed.value))
        return Trajectory(samples, route)


class CityDriveModel:
    """City driving: slower, with red-light stops at random intervals."""

    def __init__(
        self,
        rng: np.random.Generator,
        mean_speed_mps: float = 11.0,
        speed_sigma_mps: float = 3.0,
        stop_spacing_m: float = 400.0,
        stop_probability: float = 0.4,
        stop_duration_s: tuple[float, float] = (5.0, 35.0),
        tick_s: float = DEFAULT_TICK_S,
    ):
        if mean_speed_mps <= 0:
            raise ValueError("mean speed must be positive")
        if not 0.0 <= stop_probability <= 1.0:
            raise ValueError("stop probability must lie in [0, 1]")
        self._rng = rng
        self._mean = mean_speed_mps
        self._sigma = speed_sigma_mps
        self._stop_spacing = stop_spacing_m
        self._stop_prob = stop_probability
        self._stop_duration = stop_duration_s
        self.tick_s = tick_s

    def generate(self, route: Polyline, loops: int = 1) -> Trajectory:
        """Drive ``loops`` circuits of the (closed) route."""
        if loops < 1:
            raise ValueError("at least one loop required")
        total = route.length * loops
        speed = _OUSpeed(self._mean, self._sigma, 15.0, self._rng, floor_mps=2.0)
        samples = []
        t, arc = 0.0, 0.0
        next_intersection = self._stop_spacing
        stop_until = -1.0
        while arc < total:
            position = route.point_at(arc % route.length)
            moving = t >= stop_until
            current_speed = speed.value if moving else 0.0
            samples.append(TrajectorySample(t, arc, position, current_speed))
            if moving:
                arc += speed.step(self.tick_s) * self.tick_s
                if arc >= next_intersection:
                    next_intersection += self._stop_spacing
                    if self._rng.random() < self._stop_prob:
                        stop_until = t + self._rng.uniform(*self._stop_duration)
            t += self.tick_s
        return Trajectory(samples, route)


class WalkingLoopModel:
    """Walking loops — the paper's D1 (35 min x 7) / D2 (25 min x 10) style."""

    def __init__(
        self,
        rng: np.random.Generator,
        mean_speed_mps: float = 1.4,
        speed_sigma_mps: float = 0.3,
        tick_s: float = DEFAULT_TICK_S,
    ):
        if mean_speed_mps <= 0:
            raise ValueError("mean speed must be positive")
        self._rng = rng
        self._mean = mean_speed_mps
        self._sigma = speed_sigma_mps
        self.tick_s = tick_s

    def generate(self, route: Polyline, duration_s: float) -> Trajectory:
        """Walk the closed route for ``duration_s`` seconds, looping."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        speed = _OUSpeed(self._mean, self._sigma, 20.0, self._rng, floor_mps=0.5)
        samples = []
        t, arc = 0.0, 0.0
        while t <= duration_s:
            samples.append(
                TrajectorySample(t, arc, route.point_at(arc % route.length), speed.value)
            )
            arc += speed.step(self.tick_s) * self.tick_s
            t += self.tick_s
        return Trajectory(samples, route)
