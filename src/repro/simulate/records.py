"""Log records emitted by the drive simulator.

These mirror the information content of the paper's measurement stack:
XCAL's RRC/PHY logs (RRS values, measurement reports, handover commands
with stage timings) plus 5G Tracker's application-level annotations
(geolocation, radio technology, band). Downstream consumers — the §4-§6
analyses and Prognos — only ever see these records, never simulator
internals, enforcing the same information boundary the paper had.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.net.bearer import BearerMode
from repro.radio.bands import BandClass
from repro.radio.rrs import RRSSample
from repro.rrc.signaling import SignalingTally
from repro.rrc.taxonomy import HandoverType
from repro.ue.state import RadioMode


@dataclass(frozen=True, slots=True)
class NeighbourObservation:
    """Compact per-neighbour measurement (strongest neighbours only).

    ``in_a3_scope`` mirrors the measurement-object configuration the UE
    received: True when this neighbour belongs to the serving node and
    is therefore a candidate for intra-node A3 events.
    """

    gci: int
    pci: int
    rrs: RRSSample
    in_a3_scope: bool = False


@dataclass(frozen=True, slots=True)
class TickRecord:
    """One 20 Hz logging tick."""

    time_s: float
    arc_m: float
    x_m: float
    y_m: float
    speed_mps: float
    mode: RadioMode
    lte_serving_gci: int | None
    lte_serving_pci: int | None
    nr_serving_gci: int | None
    nr_serving_pci: int | None
    nr_band_class: BandClass | None
    lte_rrs: RRSSample | None
    nr_rrs: RRSSample | None
    lte_neighbours: tuple[NeighbourObservation, ...]
    nr_neighbours: tuple[NeighbourObservation, ...]
    lte_capacity_mbps: float
    nr_capacity_mbps: float
    total_capacity_mbps: float
    lte_interrupted: bool
    nr_interrupted: bool


@dataclass(frozen=True, slots=True)
class ReportRecord:
    """A measurement report as seen on the RRC layer."""

    time_s: float
    label: str
    serving_gci: int | None
    neighbour_gci: int | None
    serving_rrs: RRSSample | None
    neighbour_rrs: RRSSample | None


@dataclass(frozen=True, slots=True)
class HandoverRecord:
    """A completed handover with its full timing decomposition."""

    ho_type: HandoverType
    decision_time_s: float
    exec_start_s: float
    complete_s: float
    t1_ms: float
    t2_ms: float
    mode_before: RadioMode
    mode_after: RadioMode
    source_gci: int | None
    target_gci: int | None
    source_pci: int | None
    target_pci: int | None
    band_class: BandClass | None
    arc_m: float
    colocated: bool
    same_pci_legs: bool | None
    trigger_labels: tuple[str, ...]
    signaling: SignalingTally
    energy_j: float

    @property
    def total_ms(self) -> float:
        return self.t1_ms + self.t2_ms

    @property
    def is_4g(self) -> bool:
        return self.ho_type in (HandoverType.LTEH, HandoverType.MNBH)

    @property
    def is_5g(self) -> bool:
        return not self.is_4g


class DriveLog:
    """Everything one simulated drive produced."""

    def __init__(
        self,
        carrier: str,
        bearer: BearerMode | None,
        ticks: list[TickRecord],
        reports: list[ReportRecord],
        handovers: list[HandoverRecord],
        *,
        scenario: str = "",
    ):
        self.carrier = carrier
        self.bearer = bearer
        self.ticks = ticks
        self.reports = reports
        self.handovers = handovers
        self.scenario = scenario

    # ------------------------------------------------------------------
    # Aggregates used across the analyses.
    # ------------------------------------------------------------------

    @property
    def duration_s(self) -> float:
        if not self.ticks:
            return 0.0
        return self.ticks[-1].time_s - self.ticks[0].time_s

    @property
    def distance_km(self) -> float:
        if not self.ticks:
            return 0.0
        return (self.ticks[-1].arc_m - self.ticks[0].arc_m) / 1000.0

    @property
    def tick_interval_s(self) -> float:
        if len(self.ticks) < 2:
            return 0.0
        return self.ticks[1].time_s - self.ticks[0].time_s

    def handovers_of(self, *types: HandoverType) -> list[HandoverRecord]:
        wanted = set(types)
        return [h for h in self.handovers if h.ho_type in wanted]

    def count_by_type(self) -> dict[HandoverType, int]:
        counts: dict[HandoverType, int] = {}
        for h in self.handovers:
            counts[h.ho_type] = counts.get(h.ho_type, 0) + 1
        return counts

    def unique_cells_seen(self) -> set[int]:
        """GCIs of every cell that ever served the UE."""
        seen: set[int] = set()
        for tick in self.ticks:
            if tick.lte_serving_gci is not None:
                seen.add(tick.lte_serving_gci)
            if tick.nr_serving_gci is not None:
                seen.add(tick.nr_serving_gci)
        return seen

    def capacity_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, total capacity in Mbps) arrays for trace building.

        Memoized: the analyses, trace builders, and benches ask for the
        same arrays repeatedly, and rebuilding them per call dominated
        their runtime. The arrays are returned read-only so every
        consumer can safely share them.
        """
        cached = self.__dict__.get("_capacity_series")
        if cached is None:
            times = np.array([t.time_s for t in self.ticks])
            caps = np.array([t.total_capacity_mbps for t in self.ticks])
            times.setflags(write=False)
            caps.setflags(write=False)
            cached = (times, caps)
            self.__dict__["_capacity_series"] = cached
        return cached

    def serving_pci_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(LTE, NR) serving-PCI arrays per tick, -1 where detached.

        Memoized and read-only, like :meth:`capacity_series`; lets the
        colocation analyses count attachment conditions with array
        comparisons instead of per-tick attribute scans.
        """
        cached = self.__dict__.get("_serving_pci_series")
        if cached is None:
            lte = np.array(
                [-1 if t.lte_serving_pci is None else t.lte_serving_pci for t in self.ticks],
                dtype=np.int64,
            )
            nr = np.array(
                [-1 if t.nr_serving_pci is None else t.nr_serving_pci for t in self.ticks],
                dtype=np.int64,
            )
            lte.setflags(write=False)
            nr.setflags(write=False)
            cached = (lte, nr)
            self.__dict__["_serving_pci_series"] = cached
        return cached

    def columnar(self):
        """The packed struct-of-arrays form of this log, memoized.

        Logs materialised from a :class:`ColumnarLog` (cache hits,
        ``.npz`` loads) carry their backing store and return it without
        repacking; fresh simulator output packs once on first use. The
        packed arrays feed the ``.npz`` codec, the worker fan-out, and
        the content digests, so sharing one instance matters.
        """
        cached = self.__dict__.get("_columnar")
        if cached is None:
            from repro.simulate.columnar import ColumnarLog

            cached = ColumnarLog.from_drive_log(self)
            self.__dict__["_columnar"] = cached
        return cached

    def total_energy_j(self) -> float:
        return sum(h.energy_j for h in self.handovers)

    def total_signaling(self) -> SignalingTally:
        total = SignalingTally()
        for h in self.handovers:
            total.add(h.signaling)
        return total

    def time_in_mode_s(self, mode: RadioMode) -> float:
        dt = self.tick_interval_s
        return sum(dt for t in self.ticks if t.mode is mode)

    def merge(self, other: "DriveLog") -> "DriveLog":
        """Concatenate another drive (time/arc re-based after this one)."""
        if other.carrier != self.carrier:
            raise ValueError("cannot merge drives from different carriers")
        t_off = (self.ticks[-1].time_s + self.tick_interval_s) if self.ticks else 0.0
        a_off = self.ticks[-1].arc_m if self.ticks else 0.0
        import dataclasses

        ticks = self.ticks + [
            dataclasses.replace(t, time_s=t.time_s + t_off, arc_m=t.arc_m + a_off)
            for t in other.ticks
        ]
        reports = self.reports + [
            dataclasses.replace(r, time_s=r.time_s + t_off) for r in other.reports
        ]
        handovers = self.handovers + [
            dataclasses.replace(
                h,
                decision_time_s=h.decision_time_s + t_off,
                exec_start_s=h.exec_start_s + t_off,
                complete_s=h.complete_s + t_off,
                arc_m=h.arc_m + a_off,
            )
            for h in other.handovers
        ]
        return DriveLog(
            self.carrier, self.bearer, ticks, reports, handovers, scenario=self.scenario
        )
