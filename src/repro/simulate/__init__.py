"""The drive-test simulator: the paper's measurement platform, in silico.

``DriveSimulator`` walks a UE along a trajectory through a deployment,
runs the full measurement/handover machinery each tick (20 Hz, like the
paper's logging), and emits a :class:`DriveLog` — the cross-layer log the
paper's XCAL + 5G Tracker pipeline produced: RRS samples, measurement
reports, handover commands with T1/T2 stamps, per-leg capacity, and
per-handover signaling/energy attribution.

:mod:`repro.simulate.scenarios` packages the named workloads behind each
table/figure; :mod:`repro.simulate.dataset` assembles the paper's
datasets (the cross-country Table 1 set and the D1/D2 walking sets).
"""

from repro.simulate.records import (
    TickRecord,
    ReportRecord,
    HandoverRecord,
    DriveLog,
)
from repro.simulate.simulator import DriveSimulator, SimulationConfig
from repro.simulate.scenarios import (
    Scenario,
    freeway_scenario,
    city_walk_scenario,
    energy_loop_scenario,
    coverage_scenario,
)
from repro.simulate.dataset import (
    build_d1_dataset,
    build_d2_dataset,
    build_table1_dataset,
    DatasetSummary,
)
from repro.simulate.cache import DriveCache
from repro.simulate.columnar import ColumnarLog, load_columnar, save_columnar
from repro.simulate.runner import run_drives

__all__ = [
    "ColumnarLog",
    "DatasetSummary",
    "DriveCache",
    "DriveLog",
    "DriveSimulator",
    "HandoverRecord",
    "ReportRecord",
    "Scenario",
    "SimulationConfig",
    "TickRecord",
    "build_d1_dataset",
    "build_d2_dataset",
    "build_table1_dataset",
    "city_walk_scenario",
    "coverage_scenario",
    "energy_loop_scenario",
    "freeway_scenario",
    "load_columnar",
    "run_drives",
    "save_columnar",
]
