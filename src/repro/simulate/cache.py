"""On-disk corpus cache: content-addressed DriveLog storage.

Rebuilding the benchmark corpus dominates iteration time — every bench
session re-simulated every drive from scratch. This module caches each
:class:`~repro.simulate.records.DriveLog` on disk, keyed by a sha256
over everything that determines the log bit-for-bit:

* the scenario's name and seed,
* every :class:`SimulationConfig` knob,
* the deployment (carrier plus each cell's identity/position/power and
  the segment layout),
* the trajectory (tick interval plus the packed time/arc/x/y/speed
  arrays), and
* a code-version token — a hash over the ``repro`` package sources —
  so editing the simulator silently invalidates stale entries instead
  of serving logs produced by old code.

Environment knobs:

* ``REPRO_CACHE_DIR`` relocates the cache root (default
  ``./.repro-cache``).
* ``REPRO_NO_CACHE=1`` disables the cache entirely (every lookup
  misses, nothing is written).
* ``REPRO_CORPUS_DIR`` attaches a :class:`~repro.simulate.corpus.
  CorpusStore` at that path: lookups serve memory-mapped slices from
  the sharded corpus (falling back to — and migrating — per-drive
  ``.npz`` entries), and stores append to the corpus instead of
  writing ``.npz`` files.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import secrets
import zipfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

import numpy as np

import repro
from repro.robust import faults
from repro.simulate.columnar import ColumnarLog, load_columnar, save_columnar
from repro.simulate.records import DriveLog
from repro.simulate.scenarios import Scenario

_DEFAULT_ROOT = ".repro-cache"
_code_version_token: str | None = None


@contextmanager
def atomic_publish(path: Path) -> Iterator[Path]:
    """Yield a writer-unique temp path, atomically published to ``path``.

    The temp name embeds the pid plus a random suffix so two processes
    storing the same key never interleave writes into one file (a
    deterministic temp name let parallel pytest runs or two benches
    sharing ``REPRO_CACHE_DIR`` publish corrupt entries). The loser of
    the final ``replace`` race simply overwrites the winner's identical
    content. On failure the temp file is removed and nothing is
    published.

    The :mod:`repro.robust.faults` hooks make this the one choke point
    for injected cache-write faults: ``cache_write_oserror`` raises
    before anything is staged, ``cache_truncate`` corrupts the entry
    after publication (exercising the readers' quarantine path).
    """
    faults.maybe_raise_cache_write(path.name)
    tmp = path.with_name(f".{path.name}.{os.getpid()}-{secrets.token_hex(4)}.tmp")
    try:
        yield tmp
        tmp.replace(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    faults.maybe_truncate(path)


def code_version_token() -> str:
    """A hash over the ``repro`` package sources (cached per process)."""
    global _code_version_token
    if _code_version_token is None:
        digest = hashlib.sha256()
        package_root = Path(repro.__file__).resolve().parent
        for source in sorted(package_root.rglob("*.py")):
            digest.update(source.relative_to(package_root).as_posix().encode())
            digest.update(b"\0")
            digest.update(source.read_bytes())
        _code_version_token = digest.hexdigest()
    return _code_version_token


def _jsonable(value):
    """Coerce config field values to something json can serialise stably."""
    if isinstance(value, enum.Enum):
        return [type(value).__name__, value.name]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def scenario_fingerprint(scenario: Scenario) -> dict:
    """A JSON-compatible digest of everything that determines the log."""
    config = {
        f.name: _jsonable(getattr(scenario.config, f.name))
        for f in dataclasses.fields(scenario.config)
    }
    cells = [
        [
            c.gci,
            c.pci,
            c.band.name,
            c.node_id,
            c.tower_id,
            c.position.x,
            c.position.y,
            c.eirp_dbm,
        ]
        for c in scenario.deployment.cells
    ]
    segments = [
        {f.name: _jsonable(getattr(s, f.name)) for f in dataclasses.fields(s)}
        for s in scenario.deployment.segments
    ]
    track = np.array(
        [
            [s.time_s, s.arc_m, s.position.x, s.position.y, s.speed_mps]
            for s in scenario.trajectory
        ],
        dtype=np.float64,
    )
    return {
        "name": scenario.name,
        "seed": scenario.seed,
        "config": config,
        "carrier": scenario.deployment.carrier.name,
        "cells": cells,
        "segments": segments,
        "trajectory": {
            "ticks": len(scenario.trajectory),
            "tick_interval_s": scenario.trajectory.tick_interval_s,
            "track_sha256": hashlib.sha256(track.tobytes()).hexdigest(),
        },
        "code_version": code_version_token(),
    }


class DriveCache:
    """Content-addressed store of simulated drive logs.

    Entries live under ``root`` as ``<key>.npz`` — the packed columnar
    codec of :mod:`repro.simulate.columnar` — where ``key`` is
    :meth:`key_for` of the scenario. Hits materialise columnar-backed
    logs, so their memoized per-log series are views over the loaded
    arrays and re-packing (for digests or further stores) is free.
    Lookups on a disabled cache always miss; stores become no-ops.

    The cache is self-healing: a store that fails with ``OSError``
    (disk full, read-only ``REPRO_CACHE_DIR``) is counted in
    ``put_failures`` and otherwise ignored — a corpus run never aborts
    because its cache is sick — and an entry that fails to decode is
    quarantined (renamed ``<key>.npz.corrupt``, counted in
    ``corrupt``) so it misses once, not on every lookup.

    When a :class:`~repro.simulate.corpus.CorpusStore` is attached
    (``store=`` explicitly, or by default whenever ``REPRO_CORPUS_DIR``
    is set), the cache delegates to it behind the shared
    ``FORMAT_VERSION`` gate: lookups try the store's memory-mapped
    slices first and fall back to per-drive ``.npz`` entries — a
    ``.npz`` hit is migrated into the corpus so the next lookup maps
    instead of decompressing — and stores append to the corpus instead
    of writing new ``.npz`` files. Without a store the on-disk format
    and stats are exactly what they always were.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        enabled: bool | None = None,
        store: "object | None" = "env",
    ):
        if enabled is None:
            enabled = os.environ.get("REPRO_NO_CACHE", "") != "1"
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or _DEFAULT_ROOT
        if store == "env":
            from repro.simulate.corpus import CorpusStore

            store = CorpusStore.from_env()
        self.root = Path(root)
        self.enabled = enabled
        self.store = store
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.put_failures = 0
        self.corrupt = 0

    @staticmethod
    def key_for(scenario: Scenario) -> str:
        payload = json.dumps(
            scenario_fingerprint(scenario), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.npz"

    def get(self, scenario: Scenario) -> DriveLog | None:
        """The cached log for ``scenario``, or None on a miss."""
        clog = self.get_columnar(scenario)
        return None if clog is None else clog.to_drive_log()

    def get_columnar(self, scenario: Scenario) -> ColumnarLog | None:
        """The cached packed arrays for ``scenario``, or None on a miss.

        The fast path for consumers that scan columns and never touch
        tick objects: no ``to_drive_log()`` rebuild. With a corpus
        store attached the hit is a read-only memory-mapped slice
        (pages fault in as they are scanned); a ``.npz`` fallback hit
        is migrated into the corpus on the way out.
        """
        if not self.enabled:
            self.misses += 1
            return None
        key = self.key_for(scenario)
        if self.store is not None:
            clog = self.store.open_slice(key)
            if clog is not None:
                self.hits += 1
                return clog
        path = self._path(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            clog = load_columnar(path)
        except (EOFError, ValueError, KeyError, zipfile.BadZipFile):
            # A truncated or stale-format entry is a miss, not an
            # error — and it will never decode, so quarantine it:
            # rename to ``<key>.npz.corrupt`` (best-effort) so the next
            # lookup misses cheaply instead of re-parsing a known-bad
            # file forever.
            self._quarantine(path)
            self.misses += 1
            return None
        except OSError:
            # Transient read failure: a plain miss, the entry may be
            # readable next time.
            self.misses += 1
            return None
        if self.store is not None:
            # Best-effort migration: next lookup maps from the corpus
            # instead of decompressing this .npz again.
            self.store.append(key, clog)
        self.hits += 1
        return clog

    def _quarantine(self, path: Path) -> None:
        self.corrupt += 1
        try:
            path.replace(path.with_name(path.name + ".corrupt"))
        except OSError:
            pass

    def put(self, scenario: Scenario, log: DriveLog) -> None:
        """Store ``log`` under the scenario's content key.

        Write failures (disk full, read-only cache dir) degrade to a
        counted no-op — the caller keeps its in-memory log either way.
        With a corpus store attached the log is appended to the sharded
        corpus instead (same exactly-once, same degradation: a failed
        append counts here as a ``put_failure``).
        """
        if not self.enabled:
            return
        if self.store is not None:
            failures_before = self.store.put_failures
            if self.store.append(self.key_for(scenario), log.columnar()):
                self.stores += 1
            elif self.store.put_failures > failures_before:
                self.put_failures += 1
            return
        path = self._path(self.key_for(scenario))
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with atomic_publish(path) as tmp:
                with open(tmp, "wb") as handle:
                    save_columnar(log.columnar(), handle)
        except OSError:
            self.put_failures += 1
            return
        self.stores += 1

    @property
    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "put_failures": self.put_failures,
            "corrupt": self.corrupt,
        }
