"""Packed struct-of-arrays DriveLog: the corpus interchange format.

A :class:`~repro.simulate.records.DriveLog` is a list of per-tick
Python objects — ideal for the analyses, terrible for moving a corpus
around: pickling a 20 Hz log for a worker pool or hashing it for a
content key walks every object. :class:`ColumnarLog` is the same
information as flat numpy arrays (plus small tables for the handful of
handovers), the layout measurement-replay systems at this scale use so
that replay parallelises without per-record serialization.

Layout
------

* Per-tick scalar fields are one array each (``float64`` for
  time/position/capacity, small ints for enum indices, ``bool`` for
  flags). Optional integer identifiers (GCIs/PCIs) use ``-1`` as the
  ``None`` sentinel — the same convention
  :meth:`DriveLog.serving_pci_series` already exposes — and packing
  raises if a real identifier is negative, keeping the encoding
  lossless-or-error.
* Optional RRS triples are an ``(N, 3)`` array plus a presence mask.
* Variable-length per-tick neighbour lists are CSR-style: an
  ``(N + 1,)`` offsets array into flat per-neighbour arrays.
* Enums are stored as indices into name tables saved *in the file*
  (``enum_modes``/``enum_bands``/``enum_ho_types``), so decoding maps
  through names and survives enum reordering.
* Reports and handovers get the same treatment; trigger labels are a
  CSR string table and signaling tallies an ``(H, 5)`` int matrix.

Conversion is lossless both ways: ``to_drive_log`` rebuilds records
bit-identical to the originals (array ``.tolist()`` yields native
Python scalars, so ``log_to_dict`` output matches exactly), and it
pre-populates the log's memoized :meth:`capacity_series` /
:meth:`serving_pci_series` slots with read-only *views* over the packed
arrays — the analyses consume the columnar store directly, no copies.

The on-disk codec (:func:`save_columnar` / :func:`load_columnar`) is a
compressed ``.npz`` behind the same ``FORMAT_VERSION`` gate as the JSON
artifact format; :class:`~repro.simulate.cache.DriveCache` stores its
entries this way. :meth:`ColumnarLog.content_digest` hashes the packed
arrays — the corpus content key the derived-dataset cache uses instead
of pickling tick tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import IO, Sequence

import hashlib

import numpy as np

from repro.net.bearer import BearerMode
from repro.radio.bands import BandClass
from repro.radio.rrs import RRSSample
from repro.rrc.signaling import SignalingTally
from repro.rrc.taxonomy import HandoverType
from repro.simulate.records import (
    DriveLog,
    HandoverRecord,
    NeighbourObservation,
    ReportRecord,
    TickRecord,
)
from repro.simulate.serialization import FORMAT_VERSION
from repro.ue.state import RadioMode

#: Canonical array set (and iteration order — the digest depends on it).
ARRAY_KEYS: tuple[str, ...] = (
    "enum_modes",
    "enum_bands",
    "enum_ho_types",
    "tick_time_s",
    "tick_arc_m",
    "tick_x_m",
    "tick_y_m",
    "tick_speed_mps",
    "tick_mode",
    "tick_lte_gci",
    "tick_lte_pci",
    "tick_nr_gci",
    "tick_nr_pci",
    "tick_nr_band",
    "tick_lte_rrs",
    "tick_lte_rrs_mask",
    "tick_nr_rrs",
    "tick_nr_rrs_mask",
    "tick_lte_capacity_mbps",
    "tick_nr_capacity_mbps",
    "tick_total_capacity_mbps",
    "tick_lte_interrupted",
    "tick_nr_interrupted",
    "lte_nb_offsets",
    "lte_nb_gci",
    "lte_nb_pci",
    "lte_nb_rrs",
    "lte_nb_scope",
    "nr_nb_offsets",
    "nr_nb_gci",
    "nr_nb_pci",
    "nr_nb_rrs",
    "nr_nb_scope",
    "report_time_s",
    "report_label",
    "report_serving_gci",
    "report_neighbour_gci",
    "report_serving_rrs",
    "report_serving_rrs_mask",
    "report_neighbour_rrs",
    "report_neighbour_rrs_mask",
    "ho_type",
    "ho_decision_s",
    "ho_exec_start_s",
    "ho_complete_s",
    "ho_t1_ms",
    "ho_t2_ms",
    "ho_mode_before",
    "ho_mode_after",
    "ho_source_gci",
    "ho_target_gci",
    "ho_source_pci",
    "ho_target_pci",
    "ho_band",
    "ho_arc_m",
    "ho_colocated",
    "ho_same_pci",
    "ho_trigger_offsets",
    "ho_trigger_labels",
    "ho_signaling",
    "ho_energy_j",
)


def _opt_ints(values: Sequence[int | None]) -> np.ndarray:
    """Pack optional non-negative identifiers with -1 as the None slot."""
    provided = [v for v in values if v is not None]
    if provided and min(provided) < 0:
        raise ValueError("negative identifier collides with the -1 None sentinel")
    return np.fromiter(
        (-1 if v is None else v for v in values), dtype=np.int64, count=len(values)
    )


def _rrs_rows(samples: Sequence[RRSSample | None]) -> tuple[np.ndarray, np.ndarray]:
    mask = np.fromiter(
        (s is not None for s in samples), dtype=bool, count=len(samples)
    )
    rows = np.array(
        [
            (s.rsrp_dbm, s.rsrq_db, s.sinr_db) if s is not None else (0.0, 0.0, 0.0)
            for s in samples
        ],
        dtype=np.float64,
    ).reshape(len(samples), 3)
    return rows, mask


def _strings(values: Sequence[str]) -> np.ndarray:
    return np.array(list(values), dtype=np.str_).reshape(len(values))


def _csr(counts: Sequence[int]) -> np.ndarray:
    offsets = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(np.asarray(counts, dtype=np.int64), out=offsets[1:])
    return offsets


def _pack_neighbours(
    per_tick: Sequence[tuple[NeighbourObservation, ...]], prefix: str
) -> dict[str, np.ndarray]:
    flat = [obs for neighbours in per_tick for obs in neighbours]
    rrs = np.array(
        [(o.rrs.rsrp_dbm, o.rrs.rsrq_db, o.rrs.sinr_db) for o in flat],
        dtype=np.float64,
    ).reshape(len(flat), 3)
    return {
        f"{prefix}_offsets": _csr([len(n) for n in per_tick]),
        f"{prefix}_gci": np.fromiter(
            (o.gci for o in flat), dtype=np.int64, count=len(flat)
        ),
        f"{prefix}_pci": np.fromiter(
            (o.pci for o in flat), dtype=np.int64, count=len(flat)
        ),
        f"{prefix}_rrs": rrs,
        f"{prefix}_scope": np.fromiter(
            (o.in_a3_scope for o in flat), dtype=bool, count=len(flat)
        ),
    }


def _readonly_view(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.setflags(write=False)
    return view


@dataclass
class ColumnarLog:
    """One drive, packed into flat arrays (see the module docstring)."""

    carrier: str
    bearer: BearerMode | None
    scenario: str
    arrays: dict[str, np.ndarray]

    @property
    def n_ticks(self) -> int:
        return len(self.arrays["tick_time_s"])

    @property
    def n_reports(self) -> int:
        return len(self.arrays["report_time_s"])

    @property
    def n_handovers(self) -> int:
        return len(self.arrays["ho_type"])

    @property
    def nbytes(self) -> int:
        """Total packed payload size in bytes."""
        return sum(a.nbytes for a in self.arrays.values())

    # ------------------------------------------------------------------
    # DriveLog <-> ColumnarLog
    # ------------------------------------------------------------------

    @classmethod
    def from_drive_log(cls, log: DriveLog) -> "ColumnarLog":
        """Pack ``log`` losslessly (raises on unencodable identifiers)."""
        ticks, reports, handovers = log.ticks, log.reports, log.handovers
        mode_index = {m: i for i, m in enumerate(RadioMode)}
        band_index = {b: i for i, b in enumerate(BandClass)}
        ho_index = {h: i for i, h in enumerate(HandoverType)}

        lte_rrs, lte_rrs_mask = _rrs_rows([t.lte_rrs for t in ticks])
        nr_rrs, nr_rrs_mask = _rrs_rows([t.nr_rrs for t in ticks])
        rep_srv_rrs, rep_srv_mask = _rrs_rows([r.serving_rrs for r in reports])
        rep_nb_rrs, rep_nb_mask = _rrs_rows([r.neighbour_rrs for r in reports])

        arrays: dict[str, np.ndarray] = {
            "enum_modes": _strings([m.name for m in RadioMode]),
            "enum_bands": _strings([b.name for b in BandClass]),
            "enum_ho_types": _strings([h.name for h in HandoverType]),
            "tick_time_s": np.array([t.time_s for t in ticks], dtype=np.float64),
            "tick_arc_m": np.array([t.arc_m for t in ticks], dtype=np.float64),
            "tick_x_m": np.array([t.x_m for t in ticks], dtype=np.float64),
            "tick_y_m": np.array([t.y_m for t in ticks], dtype=np.float64),
            "tick_speed_mps": np.array(
                [t.speed_mps for t in ticks], dtype=np.float64
            ),
            "tick_mode": np.fromiter(
                (mode_index[t.mode] for t in ticks), dtype=np.int8, count=len(ticks)
            ),
            "tick_lte_gci": _opt_ints([t.lte_serving_gci for t in ticks]),
            "tick_lte_pci": _opt_ints([t.lte_serving_pci for t in ticks]),
            "tick_nr_gci": _opt_ints([t.nr_serving_gci for t in ticks]),
            "tick_nr_pci": _opt_ints([t.nr_serving_pci for t in ticks]),
            "tick_nr_band": np.fromiter(
                (
                    -1 if t.nr_band_class is None else band_index[t.nr_band_class]
                    for t in ticks
                ),
                dtype=np.int8,
                count=len(ticks),
            ),
            "tick_lte_rrs": lte_rrs,
            "tick_lte_rrs_mask": lte_rrs_mask,
            "tick_nr_rrs": nr_rrs,
            "tick_nr_rrs_mask": nr_rrs_mask,
            "tick_lte_capacity_mbps": np.array(
                [t.lte_capacity_mbps for t in ticks], dtype=np.float64
            ),
            "tick_nr_capacity_mbps": np.array(
                [t.nr_capacity_mbps for t in ticks], dtype=np.float64
            ),
            "tick_total_capacity_mbps": np.array(
                [t.total_capacity_mbps for t in ticks], dtype=np.float64
            ),
            "tick_lte_interrupted": np.fromiter(
                (t.lte_interrupted for t in ticks), dtype=bool, count=len(ticks)
            ),
            "tick_nr_interrupted": np.fromiter(
                (t.nr_interrupted for t in ticks), dtype=bool, count=len(ticks)
            ),
            **_pack_neighbours([t.lte_neighbours for t in ticks], "lte_nb"),
            **_pack_neighbours([t.nr_neighbours for t in ticks], "nr_nb"),
            "report_time_s": np.array(
                [r.time_s for r in reports], dtype=np.float64
            ),
            "report_label": _strings([r.label for r in reports]),
            "report_serving_gci": _opt_ints([r.serving_gci for r in reports]),
            "report_neighbour_gci": _opt_ints([r.neighbour_gci for r in reports]),
            "report_serving_rrs": rep_srv_rrs,
            "report_serving_rrs_mask": rep_srv_mask,
            "report_neighbour_rrs": rep_nb_rrs,
            "report_neighbour_rrs_mask": rep_nb_mask,
            "ho_type": np.fromiter(
                (ho_index[h.ho_type] for h in handovers),
                dtype=np.int8,
                count=len(handovers),
            ),
            "ho_decision_s": np.array(
                [h.decision_time_s for h in handovers], dtype=np.float64
            ),
            "ho_exec_start_s": np.array(
                [h.exec_start_s for h in handovers], dtype=np.float64
            ),
            "ho_complete_s": np.array(
                [h.complete_s for h in handovers], dtype=np.float64
            ),
            "ho_t1_ms": np.array([h.t1_ms for h in handovers], dtype=np.float64),
            "ho_t2_ms": np.array([h.t2_ms for h in handovers], dtype=np.float64),
            "ho_mode_before": np.fromiter(
                (mode_index[h.mode_before] for h in handovers),
                dtype=np.int8,
                count=len(handovers),
            ),
            "ho_mode_after": np.fromiter(
                (mode_index[h.mode_after] for h in handovers),
                dtype=np.int8,
                count=len(handovers),
            ),
            "ho_source_gci": _opt_ints([h.source_gci for h in handovers]),
            "ho_target_gci": _opt_ints([h.target_gci for h in handovers]),
            "ho_source_pci": _opt_ints([h.source_pci for h in handovers]),
            "ho_target_pci": _opt_ints([h.target_pci for h in handovers]),
            "ho_band": np.fromiter(
                (
                    -1 if h.band_class is None else band_index[h.band_class]
                    for h in handovers
                ),
                dtype=np.int8,
                count=len(handovers),
            ),
            "ho_arc_m": np.array([h.arc_m for h in handovers], dtype=np.float64),
            "ho_colocated": np.fromiter(
                (h.colocated for h in handovers), dtype=bool, count=len(handovers)
            ),
            "ho_same_pci": np.fromiter(
                (
                    -1 if h.same_pci_legs is None else int(h.same_pci_legs)
                    for h in handovers
                ),
                dtype=np.int8,
                count=len(handovers),
            ),
            "ho_trigger_offsets": _csr([len(h.trigger_labels) for h in handovers]),
            "ho_trigger_labels": _strings(
                [label for h in handovers for label in h.trigger_labels]
            ),
            "ho_signaling": np.array(
                [
                    (
                        h.signaling.rrc_measurement_reports,
                        h.signaling.rrc_reconfigurations,
                        h.signaling.rrc_reconfiguration_completes,
                        h.signaling.rach_procedures,
                        h.signaling.phy_ssb_measurements,
                    )
                    for h in handovers
                ],
                dtype=np.int64,
            ).reshape(len(handovers), 5),
            "ho_energy_j": np.array(
                [h.energy_j for h in handovers], dtype=np.float64
            ),
        }
        return cls(log.carrier, log.bearer, log.scenario, arrays)

    def to_drive_log(self) -> DriveLog:
        """Rebuild the object-graph log, bit-identical in every field.

        The returned log is *backed* by this columnar store: its
        memoized ``capacity_series`` / ``serving_pci_series`` slots are
        read-only views over the packed arrays, and ``log.columnar()``
        returns this instance without repacking.
        """
        a = self.arrays
        modes = [RadioMode[name] for name in a["enum_modes"].tolist()]
        bands = [BandClass[name] for name in a["enum_bands"].tolist()]
        ho_types = [HandoverType[name] for name in a["enum_ho_types"].tolist()]

        def opt(values: list, i: int):
            return None if values[i] == -1 else values[i]

        def rrs_at(rows: list, mask: list, i: int) -> RRSSample | None:
            if not mask[i]:
                return None
            r = rows[i]
            return RRSSample(rsrp_dbm=r[0], rsrq_db=r[1], sinr_db=r[2])

        def neighbours(prefix: str) -> list[tuple[NeighbourObservation, ...]]:
            offsets = a[f"{prefix}_offsets"].tolist()
            gci = a[f"{prefix}_gci"].tolist()
            pci = a[f"{prefix}_pci"].tolist()
            rrs = a[f"{prefix}_rrs"].tolist()
            scope = a[f"{prefix}_scope"].tolist()
            out = []
            for lo, hi in zip(offsets, offsets[1:]):
                out.append(
                    tuple(
                        NeighbourObservation(
                            gci=gci[j],
                            pci=pci[j],
                            rrs=RRSSample(
                                rsrp_dbm=rrs[j][0],
                                rsrq_db=rrs[j][1],
                                sinr_db=rrs[j][2],
                            ),
                            in_a3_scope=scope[j],
                        )
                        for j in range(lo, hi)
                    )
                )
            return out

        time_s = a["tick_time_s"].tolist()
        arc_m = a["tick_arc_m"].tolist()
        x_m = a["tick_x_m"].tolist()
        y_m = a["tick_y_m"].tolist()
        speed = a["tick_speed_mps"].tolist()
        mode = a["tick_mode"].tolist()
        lte_gci = a["tick_lte_gci"].tolist()
        lte_pci = a["tick_lte_pci"].tolist()
        nr_gci = a["tick_nr_gci"].tolist()
        nr_pci = a["tick_nr_pci"].tolist()
        nr_band = a["tick_nr_band"].tolist()
        lte_rrs = a["tick_lte_rrs"].tolist()
        lte_rrs_mask = a["tick_lte_rrs_mask"].tolist()
        nr_rrs = a["tick_nr_rrs"].tolist()
        nr_rrs_mask = a["tick_nr_rrs_mask"].tolist()
        lte_cap = a["tick_lte_capacity_mbps"].tolist()
        nr_cap = a["tick_nr_capacity_mbps"].tolist()
        total_cap = a["tick_total_capacity_mbps"].tolist()
        lte_int = a["tick_lte_interrupted"].tolist()
        nr_int = a["tick_nr_interrupted"].tolist()
        lte_neighbours = neighbours("lte_nb")
        nr_neighbours = neighbours("nr_nb")

        ticks = [
            TickRecord(
                time_s=time_s[i],
                arc_m=arc_m[i],
                x_m=x_m[i],
                y_m=y_m[i],
                speed_mps=speed[i],
                mode=modes[mode[i]],
                lte_serving_gci=opt(lte_gci, i),
                lte_serving_pci=opt(lte_pci, i),
                nr_serving_gci=opt(nr_gci, i),
                nr_serving_pci=opt(nr_pci, i),
                nr_band_class=None if nr_band[i] == -1 else bands[nr_band[i]],
                lte_rrs=rrs_at(lte_rrs, lte_rrs_mask, i),
                nr_rrs=rrs_at(nr_rrs, nr_rrs_mask, i),
                lte_neighbours=lte_neighbours[i],
                nr_neighbours=nr_neighbours[i],
                lte_capacity_mbps=lte_cap[i],
                nr_capacity_mbps=nr_cap[i],
                total_capacity_mbps=total_cap[i],
                lte_interrupted=lte_int[i],
                nr_interrupted=nr_int[i],
            )
            for i in range(len(time_s))
        ]

        rep_time = a["report_time_s"].tolist()
        rep_label = a["report_label"].tolist()
        rep_srv_gci = a["report_serving_gci"].tolist()
        rep_nb_gci = a["report_neighbour_gci"].tolist()
        rep_srv_rrs = a["report_serving_rrs"].tolist()
        rep_srv_mask = a["report_serving_rrs_mask"].tolist()
        rep_nb_rrs = a["report_neighbour_rrs"].tolist()
        rep_nb_mask = a["report_neighbour_rrs_mask"].tolist()
        reports = [
            ReportRecord(
                time_s=rep_time[i],
                label=rep_label[i],
                serving_gci=opt(rep_srv_gci, i),
                neighbour_gci=opt(rep_nb_gci, i),
                serving_rrs=rrs_at(rep_srv_rrs, rep_srv_mask, i),
                neighbour_rrs=rrs_at(rep_nb_rrs, rep_nb_mask, i),
            )
            for i in range(len(rep_time))
        ]

        ho_type = a["ho_type"].tolist()
        decision = a["ho_decision_s"].tolist()
        exec_start = a["ho_exec_start_s"].tolist()
        complete = a["ho_complete_s"].tolist()
        t1 = a["ho_t1_ms"].tolist()
        t2 = a["ho_t2_ms"].tolist()
        mode_before = a["ho_mode_before"].tolist()
        mode_after = a["ho_mode_after"].tolist()
        src_gci = a["ho_source_gci"].tolist()
        tgt_gci = a["ho_target_gci"].tolist()
        src_pci = a["ho_source_pci"].tolist()
        tgt_pci = a["ho_target_pci"].tolist()
        ho_band = a["ho_band"].tolist()
        ho_arc = a["ho_arc_m"].tolist()
        colocated = a["ho_colocated"].tolist()
        same_pci = a["ho_same_pci"].tolist()
        trig_offsets = a["ho_trigger_offsets"].tolist()
        trig_labels = a["ho_trigger_labels"].tolist()
        signaling = a["ho_signaling"].tolist()
        energy = a["ho_energy_j"].tolist()
        handovers = [
            HandoverRecord(
                ho_type=ho_types[ho_type[i]],
                decision_time_s=decision[i],
                exec_start_s=exec_start[i],
                complete_s=complete[i],
                t1_ms=t1[i],
                t2_ms=t2[i],
                mode_before=modes[mode_before[i]],
                mode_after=modes[mode_after[i]],
                source_gci=opt(src_gci, i),
                target_gci=opt(tgt_gci, i),
                source_pci=opt(src_pci, i),
                target_pci=opt(tgt_pci, i),
                band_class=None if ho_band[i] == -1 else bands[ho_band[i]],
                arc_m=ho_arc[i],
                colocated=colocated[i],
                same_pci_legs=None if same_pci[i] == -1 else bool(same_pci[i]),
                trigger_labels=tuple(
                    trig_labels[trig_offsets[i] : trig_offsets[i + 1]]
                ),
                signaling=SignalingTally(*signaling[i]),
                energy_j=energy[i],
            )
            for i in range(len(ho_type))
        ]

        log = DriveLog(
            self.carrier,
            self.bearer,
            ticks,
            reports,
            handovers,
            scenario=self.scenario,
        )
        # Back the log with this store: the memoized per-log series are
        # zero-copy views, and columnar() repacks nothing.
        log.__dict__["_columnar"] = self
        log.__dict__["_capacity_series"] = (
            _readonly_view(a["tick_time_s"]),
            _readonly_view(a["tick_total_capacity_mbps"]),
        )
        log.__dict__["_serving_pci_series"] = (
            _readonly_view(a["tick_lte_pci"]),
            _readonly_view(a["tick_nr_pci"]),
        )
        return log

    # ------------------------------------------------------------------
    # Content addressing
    # ------------------------------------------------------------------

    def content_digest(self) -> str:
        """sha256 over the packed arrays (and the scalar metadata)."""
        digest = hashlib.sha256()
        digest.update(b"columnar-log\0")
        digest.update(str(FORMAT_VERSION).encode())
        for text in (
            self.carrier,
            "" if self.bearer is None else self.bearer.name,
            self.scenario,
        ):
            digest.update(b"\0")
            digest.update(text.encode())
        for key in ARRAY_KEYS:
            array = self.arrays[key]
            digest.update(key.encode())
            digest.update(str(array.dtype).encode())
            digest.update(str(array.shape).encode())
            digest.update(np.ascontiguousarray(array).tobytes())
        return digest.hexdigest()


def as_columnar(log) -> ColumnarLog:
    """``log`` as packed arrays, whatever it is.

    Accepts a :class:`ColumnarLog` (returned as-is — including
    memory-mapped corpus slices, which stay zero-copy) or a
    :class:`~repro.simulate.records.DriveLog` (its memoized
    :meth:`~repro.simulate.records.DriveLog.columnar` packing). The
    columnar analyses take either, so callers holding a corpus slice
    never materialise tick objects just to hand them to an analysis.
    """
    if isinstance(log, ColumnarLog):
        return log
    return log.columnar()


# ----------------------------------------------------------------------
# .npz codec
# ----------------------------------------------------------------------


def save_columnar(clog: ColumnarLog, file: str | Path | IO[bytes]) -> None:
    """Write ``clog`` as a compressed ``.npz`` archive."""
    np.savez_compressed(
        file,
        format_version=np.int64(FORMAT_VERSION),
        carrier=np.array(clog.carrier),
        bearer=np.array("" if clog.bearer is None else clog.bearer.name),
        scenario=np.array(clog.scenario),
        **clog.arrays,
    )


def load_columnar(file: str | Path | IO[bytes]) -> ColumnarLog:
    """Read an archive written by :func:`save_columnar`."""
    with np.load(file, allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported drive-log format version {version!r}")
        carrier = str(archive["carrier"][()])
        bearer_name = str(archive["bearer"][()])
        bearer = BearerMode[bearer_name] if bearer_name else None
        scenario = str(archive["scenario"][()])
        arrays = {key: archive[key] for key in ARRAY_KEYS}
    return ColumnarLog(carrier, bearer, scenario, arrays)
