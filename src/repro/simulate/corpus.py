"""Out-of-core sharded corpus store: memory-mapped zero-copy slices.

The per-drive ``.npz`` entries of :class:`~repro.simulate.cache.DriveCache`
made warm runs skip *simulation*, but every use still decompressed and
materialised a whole drive — a full-corpus scan paid RAM for every tick
of every drive, and ``REPRO_BENCH_SCALE=full`` corpora were approaching
what one machine can hold. :class:`CorpusStore` consolidates drives
into *sharded, uncompressed, memory-mappable* corpus files:

* one arrays blob per shard (``shard-NNNNNN.bin`` — the packed
  :data:`~repro.simulate.columnar.ARRAY_KEYS` arrays of many drives,
  concatenated with 64-byte alignment), plus
* one JSON index per shard (``shard-NNNNNN.json`` — byte offsets,
  dtypes, and shapes per drive per array, and the shard's committed
  extent), committed atomically through
  :func:`~repro.simulate.cache.atomic_publish`.

:meth:`CorpusStore.open_slice` returns a
:class:`~repro.simulate.columnar.ColumnarLog` whose arrays are
read-only ``np.memmap`` views over the shard blob: no decompression, no
copy, no whole-log materialisation — a consumer that scans only the
handover columns faults in only those pages. The views keep the mapping
alive on their own, so they survive the store (or even the process's
last store handle) going away.

**Appends are resumable and exactly-once.** ``append`` writes the
drive's payload to the tail of the current shard blob (fsync), then
publishes the updated shard index atomically. A crash between the two
leaves unreferenced bytes at the tail, which the next append truncates
away; a crash before either leaves nothing. Re-appending a present
``drive_id`` is a counted no-op — which is exactly what makes
``run_drives``-style generation resumable: kill a corpus build at drive
k of n, rerun, and only the n−k missing drives simulate.

**Corruption degrades to misses**, mirroring the self-healing cache
semantics: a shard whose blob is shorter than its index's committed
extent (or whose index fails to parse, or references bytes past the
committed extent) is *quarantined* — both files renamed ``*.corrupt``,
its drives become misses — while a shard written by a different
``FORMAT_VERSION`` is skipped as stale, not corrupt. A failed append
(``OSError``, injected ``cache_write_oserror``) is a counted no-op;
the drive simply stays missing.

Environment knobs:

* ``REPRO_CORPUS_DIR`` — store root. When set, a default-constructed
  :class:`~repro.simulate.cache.DriveCache` attaches the store and
  delegates to it (see :meth:`CorpusStore.from_env`); unset, explicit
  construction defaults to ``<cache root>/corpus``.
* ``REPRO_CORPUS_SHARD_MB`` — target shard size before rolling to a
  new shard (default 64 MiB).
* ``REPRO_NO_CACHE=1`` disables the store like every other cache layer.

The store is single-writer, many-reader: generation publishes from one
parent process (``run_drives``' supervised ``on_result`` hook), while
any number of processes may ``open_slice`` concurrently. Workers never
receive corpora over IPC: :class:`CorpusView` parks only
``(store_path, drive_ids)`` — tens of bytes under pickle — and each
worker opens its memmaps lazily, on the fork *and* spawn paths alike.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.net.bearer import BearerMode
from repro.simulate.columnar import ARRAY_KEYS, ColumnarLog
from repro.simulate.serialization import FORMAT_VERSION

#: Per-array alignment inside a shard blob; keeps every memmap view on
#: a cache-line boundary regardless of the preceding arrays' dtypes.
_ALIGN = 64

_DEFAULT_SHARD_MB = 64.0


def _default_root() -> Path:
    env = os.environ.get("REPRO_CORPUS_DIR")
    if env:
        return Path(env)
    cache_root = os.environ.get("REPRO_CACHE_DIR") or ".repro-cache"
    return Path(cache_root) / "corpus"


def _shard_limit_bytes(shard_mb: float | None) -> int:
    if shard_mb is None:
        raw = os.environ.get("REPRO_CORPUS_SHARD_MB", "")
        try:
            shard_mb = float(raw) if raw else _DEFAULT_SHARD_MB
        except ValueError:
            shard_mb = _DEFAULT_SHARD_MB
    return max(1, int(shard_mb * 1024 * 1024))


def _encode_payload(clog: ColumnarLog) -> tuple[bytes, dict]:
    """The drive's arrays as one aligned byte string + its index entry."""
    chunks: list[bytes] = []
    arrays: dict[str, dict] = {}
    pos = 0
    for key in ARRAY_KEYS:
        array = np.ascontiguousarray(clog.arrays[key])
        data = array.tobytes()
        arrays[key] = {
            "offset": pos,
            "dtype": array.dtype.str,
            "shape": list(array.shape),
        }
        chunks.append(data)
        pos += len(data)
        pad = (-pos) % _ALIGN
        if pad:
            chunks.append(b"\0" * pad)
            pos += pad
    entry = {
        "carrier": clog.carrier,
        "bearer": "" if clog.bearer is None else clog.bearer.name,
        "scenario": clog.scenario,
        "nbytes": pos,
        "arrays": arrays,
    }
    return b"".join(chunks), entry


class CorpusStore:
    """Sharded, memory-mapped, append-only corpus of columnar drives."""

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        shard_mb: float | None = None,
        enabled: bool | None = None,
    ):
        if enabled is None:
            enabled = os.environ.get("REPRO_NO_CACHE", "") != "1"
        self.root = Path(root) if root is not None else _default_root()
        self.enabled = enabled
        self.shard_limit = _shard_limit_bytes(shard_mb)
        self.hits = 0
        self.misses = 0
        self.appends = 0
        self.duplicates = 0
        self.put_failures = 0
        self.quarantined = 0
        self.stale_shards = 0
        #: drive_id -> (shard name, index entry with absolute "offset").
        self._index: dict[str, tuple[str, dict]] = {}
        #: shard name -> committed byte extent.
        self._shards: dict[str, int] = {}
        self._next_shard = 0
        self._mmaps: dict[tuple[str, int], np.memmap] = {}
        if self.enabled:
            self.refresh()

    @classmethod
    def from_env(cls) -> "CorpusStore | None":
        """The store named by ``REPRO_CORPUS_DIR``, or None when unset."""
        if not os.environ.get("REPRO_CORPUS_DIR"):
            return None
        return cls()

    # ------------------------------------------------------------------
    # Index loading, validation, and quarantine
    # ------------------------------------------------------------------

    def refresh(self) -> None:
        """(Re)build the in-memory index from the on-disk shard set."""
        self._index.clear()
        self._shards.clear()
        self._next_shard = 0
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("shard-*.bin*")) + sorted(
            self.root.glob("shard-*.json*")
        ):
            # Never reuse a shard number, even a quarantined one.
            stem = path.name.split(".")[0]
            try:
                number = int(stem.split("-")[1])
            except (IndexError, ValueError):
                continue
            self._next_shard = max(self._next_shard, number + 1)
        for index_path in sorted(self.root.glob("shard-*.json")):
            shard = index_path.name[: -len(".json")]
            try:
                meta = json.loads(index_path.read_text())
            except (OSError, ValueError):
                self._quarantine(shard)
                continue
            if not isinstance(meta, dict) or meta.get("format_version") != FORMAT_VERSION:
                # A shard written by other code is stale, not corrupt:
                # skip it (its drives read as misses) but leave it alone.
                self.stale_shards += 1
                continue
            if not self._validate(shard, meta):
                self._quarantine(shard)
                continue
            committed = int(meta["committed_bytes"])
            self._shards[shard] = committed
            for drive_id, entry in meta["drives"].items():
                self._index.setdefault(drive_id, (shard, entry))

    def _validate(self, shard: str, meta: dict) -> bool:
        """True when the shard's blob covers everything its index claims."""
        try:
            committed = int(meta["committed_bytes"])
            drives = meta["drives"]
            blob_size = (self.root / f"{shard}.bin").stat().st_size
        except (KeyError, TypeError, ValueError, OSError):
            return False
        if blob_size < committed:
            return False  # truncated blob: index promises bytes it lost
        for entry in drives.values():
            try:
                if int(entry["offset"]) + int(entry["nbytes"]) > committed:
                    return False  # index/shard mismatch
                if set(entry["arrays"]) != set(ARRAY_KEYS):
                    return False
            except (KeyError, TypeError, ValueError):
                return False
        return True

    def _quarantine(self, shard: str) -> None:
        self.quarantined += 1
        for suffix in (".json", ".bin"):
            path = self.root / f"{shard}{suffix}"
            try:
                path.replace(path.with_name(path.name + ".corrupt"))
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Reads: zero-copy slices
    # ------------------------------------------------------------------

    def __contains__(self, drive_id: str) -> bool:
        return drive_id in self._index

    def __len__(self) -> int:
        return len(self._index)

    def drive_ids(self) -> list[str]:
        return list(self._index)

    def _mmap(self, shard: str) -> np.memmap:
        committed = self._shards[shard]
        key = (shard, committed)
        cached = self._mmaps.get(key)
        if cached is None:
            cached = np.memmap(
                self.root / f"{shard}.bin",
                dtype=np.uint8,
                mode="r",
                shape=(committed,),
            )
            self._mmaps[key] = cached
        return cached

    def open_slice(self, drive_id: str) -> ColumnarLog | None:
        """The drive's :class:`ColumnarLog`, arrays as read-only memmaps.

        Returns None (a counted miss) when the drive is absent or the
        shard is transiently unreadable. The returned arrays are views
        over the shard mapping — only the pages a consumer touches are
        ever faulted in, and the views stay valid after the store
        object is gone.
        """
        if not self.enabled:
            self.misses += 1
            return None
        found = self._index.get(drive_id)
        if found is None:
            self.misses += 1
            return None
        shard, entry = found
        try:
            blob = self._mmap(shard)
        except (OSError, ValueError):
            self.misses += 1
            return None
        base = int(entry["offset"])
        arrays: dict[str, np.ndarray] = {}
        for key in ARRAY_KEYS:
            meta = entry["arrays"][key]
            dtype = np.dtype(meta["dtype"])
            shape = tuple(int(n) for n in meta["shape"])
            nbytes = dtype.itemsize * math.prod(shape)
            offset = base + int(meta["offset"])
            arrays[key] = blob[offset : offset + nbytes].view(dtype).reshape(shape)
        bearer = BearerMode[entry["bearer"]] if entry["bearer"] else None
        self.hits += 1
        return ColumnarLog(entry["carrier"], bearer, entry["scenario"], arrays)

    def drive_nbytes(self, drive_id: str) -> int:
        """Packed payload size of one stored drive (0 when absent)."""
        found = self._index.get(drive_id)
        return 0 if found is None else int(found[1]["nbytes"])

    @property
    def bytes_indexed(self) -> int:
        """Committed bytes across every readable shard."""
        return sum(self._shards.values())

    # ------------------------------------------------------------------
    # Writes: resumable, exactly-once appends
    # ------------------------------------------------------------------

    def _writable_shard(self) -> str:
        if self._shards:
            tail = max(self._shards, key=lambda name: int(name.split("-")[1]))
            if self._shards[tail] < self.shard_limit:
                return tail
        shard = f"shard-{self._next_shard:06d}"
        self._next_shard += 1
        return shard

    def append(self, drive_id: str, clog: ColumnarLog) -> bool:
        """Append one drive; True when newly stored.

        Exactly-once: a present ``drive_id`` is a counted no-op. Write
        failures degrade to a counted no-op too (the drive stays
        missing — a rerun regenerates it); the index commit routes
        through :func:`~repro.simulate.cache.atomic_publish`, so the
        fault-injection hooks and crash-consistency guarantees match
        the per-drive cache's.
        """
        from repro.simulate.cache import atomic_publish

        if not self.enabled:
            return False
        if drive_id in self._index:
            self.duplicates += 1
            return False
        payload, entry = _encode_payload(clog)
        shard = self._writable_shard()
        blob_path = self.root / f"{shard}.bin"
        index_path = self.root / f"{shard}.json"
        committed = self._shards.get(shard, 0)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(blob_path, "r+b" if blob_path.exists() else "w+b") as handle:
                # Bytes past the committed extent are leftovers of an
                # append that died before its index commit; reclaim them.
                handle.truncate(committed)
                handle.seek(committed)
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            entry = {**entry, "offset": committed}
            drives = {
                d: e for d, (s, e) in self._index.items() if s == shard
            }
            drives[drive_id] = entry
            meta = {
                "format_version": FORMAT_VERSION,
                "committed_bytes": committed + len(payload),
                "drives": drives,
            }
            with atomic_publish(index_path) as tmp:
                tmp.write_text(json.dumps(meta, sort_keys=True))
        except OSError:
            self.put_failures += 1
            return False
        self._shards[shard] = committed + len(payload)
        self._index[drive_id] = (shard, entry)
        self.appends += 1
        return True

    @property
    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "appends": self.appends,
            "duplicates": self.duplicates,
            "put_failures": self.put_failures,
            "quarantined": self.quarantined,
            "stale_shards": self.stale_shards,
            "drives": len(self._index),
            "shards": len(self._shards),
        }


# ----------------------------------------------------------------------
# Lazy corpus handles: what the worker pools park and ship
# ----------------------------------------------------------------------

#: Per-process store handles, keyed by root path. Workers (forked or
#: spawned) resolve :class:`DriveRef`/:class:`CorpusView` through this
#: cache, so a pool pass opens each store once per process, not per job.
_PROCESS_STORES: dict[str, CorpusStore] = {}


def open_store(path: str | Path) -> CorpusStore:
    """A process-cached read handle on the store at ``path``.

    Always enabled, whatever ``REPRO_NO_CACHE`` says: a parked
    ``(store_path, drive_id)`` pointer is the *primary* handle on data
    that already exists — resolving it is a read, not a cache layer.
    """
    key = str(path)
    store = _PROCESS_STORES.get(key)
    if store is None:
        store = CorpusStore(key, enabled=True)
        _PROCESS_STORES[key] = store
    return store


class DriveRef:
    """A picklable pointer to one stored drive: ``(store_path, drive_id)``.

    This is what the fan-out registry parks instead of an in-memory
    corpus: tens of bytes under pickle on the spawn path, and on the
    fork path the child inherits only the pointer and opens its memmap
    lazily on first use.
    """

    __slots__ = ("store_path", "drive_id")

    def __init__(self, store_path: str, drive_id: str):
        self.store_path = store_path
        self.drive_id = drive_id

    def __getstate__(self):
        return (self.store_path, self.drive_id)

    def __setstate__(self, state):
        self.store_path, self.drive_id = state

    def columnar(self) -> ColumnarLog:
        """The memmap-backed slice (no tick materialisation)."""
        clog = open_store(self.store_path).open_slice(self.drive_id)
        if clog is None:
            raise KeyError(
                f"drive {self.drive_id!r} is not in the corpus store at "
                f"{self.store_path!r}"
            )
        return clog

    def load(self):
        """The full :class:`~repro.simulate.records.DriveLog`."""
        return self.columnar().to_drive_log()


def resolve_log(log):
    """``log`` itself, or the materialised drive behind a :class:`DriveRef`."""
    if isinstance(log, DriveRef):
        return log.load()
    return log


class CorpusView(Sequence):
    """A lazy, picklable sequence of drives backed by a :class:`CorpusStore`.

    Indexing materialises (and memoises) the full ``DriveLog``;
    :meth:`columnar` and :meth:`iter_columnar` expose the memmap-backed
    slices directly for consumers that only scan packed arrays and
    should never pay for tick objects. Pickling ships only
    ``(store_path, drive_ids)``, so parking a view in the fan-out
    registry — or sending it to a spawn worker — costs the same
    whether the corpus is ten drives or ten million.
    """

    def __init__(self, store_path: str | Path, drive_ids: Sequence[str]):
        self.store_path = str(store_path)
        self.drive_ids = list(drive_ids)
        self._logs: dict[int, object] = {}

    def __getstate__(self):
        return (self.store_path, self.drive_ids)

    def __setstate__(self, state):
        self.store_path, self.drive_ids = state
        self._logs = {}

    def __len__(self) -> int:
        return len(self.drive_ids)

    def __getitem__(self, index: int):
        if isinstance(index, slice):
            return CorpusView(self.store_path, self.drive_ids[index])
        i = range(len(self.drive_ids))[index]
        log = self._logs.get(i)
        if log is None:
            log = self.ref(i).load()
            self._logs[i] = log
        return log

    def ref(self, index: int) -> DriveRef:
        return DriveRef(self.store_path, self.drive_ids[index])

    def refs(self) -> list[DriveRef]:
        return [self.ref(i) for i in range(len(self.drive_ids))]

    def columnar(self, index: int) -> ColumnarLog:
        """The memmap-backed slice for one drive (no materialisation)."""
        return self.ref(index).columnar()

    def iter_columnar(self) -> Iterator[ColumnarLog]:
        for i in range(len(self.drive_ids)):
            yield self.columnar(i)

    def handover_events(self) -> list[tuple[float, object]]:
        """(global time, type) of every handover, straight off the shards.

        Matches :func:`repro.ml.features.handover_events` over the
        materialised logs — same per-log ``duration + 1 s`` re-basing —
        but touches only the handover columns and the first/last tick
        time of each drive, so a full-corpus event index never
        materialises a tick object.
        """
        from repro.rrc.taxonomy import HandoverType

        events: list[tuple[float, object]] = []
        offset = 0.0
        for clog in self.iter_columnar():
            a = clog.arrays
            times = a["tick_time_s"]
            duration = float(times[-1] - times[0]) if len(times) else 0.0
            types = [HandoverType[name] for name in a["enum_ho_types"].tolist()]
            for when, type_index in zip(
                a["ho_decision_s"].tolist(), a["ho_type"].tolist()
            ):
                events.append((when + offset, types[type_index]))
            offset += duration + 1.0
        events.sort(key=lambda item: item[0])
        return events
