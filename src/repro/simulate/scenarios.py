"""Named scenarios: the workloads behind the paper's tables and figures.

Each scenario bundles a deployment, a trajectory, and simulator knobs.
The inter-site distances are the calibration layer of this reproduction
(DESIGN.md §4): they are chosen so the *measured* quantities the paper
reports — HO spacing, coverage diameters, energy per km — come out of
the generic analysis pipeline, rather than being hard-coded anywhere.

Spacing rationale (freeway):
    LTE anchors every 0.6 km             → a 4G HO every ~0.6 km (§5.1)
    NR low-band cells every 1.4 km       → low-band coverage ~1.4 km (§6.1)
    NR mid-band cells every 0.73 km      → mid-band coverage ~0.73 km
    NR mmWave cells every 0.15 km        → mmWave coverage ~0.15 km
    SA low-band cells every 0.9 km       → an SA HO every ~0.9 km
Combining anchor-induced SCG re-adds with NR-side procedures yields the
paper's NSA 5G HO spacings (~0.4 km low, ~0.35 km mid, ~0.13 km mmWave).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.geo.polyline import Polyline
from repro.mobility.models import (
    CityDriveModel,
    FreewayDriveModel,
    WalkingLoopModel,
)
from repro.mobility.trajectory import Trajectory
from repro.net.bearer import BearerMode
from repro.radio.bands import BandClass
from repro.ran.carrier import CarrierProfile
from repro.ran.deployment import Deployment, DeploymentBuilder, SegmentConfig
from repro.simulate.records import DriveLog
from repro.simulate.simulator import DriveSimulator, SimulationConfig

#: Freeway NR inter-cell distances per band class (metres).
FREEWAY_NR_ISD_M: dict[BandClass, float] = {
    BandClass.LOW: 1400.0,
    BandClass.MID: 730.0,
    BandClass.MMWAVE: 120.0,
}

FREEWAY_LTE_ISD_M = 500.0
SA_LOW_ISD_M = 900.0


@dataclass(frozen=True)
class Scenario:
    """A fully-specified simulation workload."""

    name: str
    deployment: Deployment
    trajectory: Trajectory
    config: SimulationConfig
    seed: int

    def run(self) -> DriveLog:
        """Simulate the scenario (deterministic for a given seed)."""
        rng = np.random.default_rng(self.seed + 0x5EED)
        sim = DriveSimulator(self.deployment, self.trajectory, rng, self.config)
        return sim.run()


def freeway_scenario(
    carrier: CarrierProfile,
    nr_band_class: BandClass | None,
    *,
    standalone: bool = False,
    length_km: float = 30.0,
    seed: int = 0,
    bearer: BearerMode = BearerMode.DUAL,
    lte_isd_m: float | None = None,
    nr_isd_m: float | None = None,
) -> Scenario:
    """An interstate-freeway drive with one homogeneous coverage type."""
    rng = np.random.default_rng(seed)
    route = Polyline.straight(length_km * 1000.0)
    if standalone:
        nr_isd = nr_isd_m if nr_isd_m is not None else SA_LOW_ISD_M
    else:
        nr_isd = (
            nr_isd_m
            if nr_isd_m is not None
            else (FREEWAY_NR_ISD_M[nr_band_class] if nr_band_class else 0.0) or 1400.0
        )
    segment = SegmentConfig(
        0.0,
        route.length,
        lte_isd_m=lte_isd_m if lte_isd_m is not None else FREEWAY_LTE_ISD_M,
        nr_band_class=nr_band_class,
        nr_isd_m=nr_isd,
        standalone=standalone,
        urban=False,
    )
    deployment = DeploymentBuilder(route, carrier, rng).add_segment(segment).build()
    trajectory = FreewayDriveModel(rng).generate(route)
    band = nr_band_class.value if nr_band_class else "LTE-only"
    arch = "SA" if standalone else "NSA"
    return Scenario(
        name=f"freeway/{carrier.name}/{arch}/{band}",
        deployment=deployment,
        trajectory=trajectory,
        config=SimulationConfig(bearer=bearer, scenario_name=f"freeway-{band}-{arch}"),
        seed=seed,
    )


def city_walk_scenario(
    carrier: CarrierProfile,
    band_classes: tuple[BandClass, ...],
    *,
    duration_min: float = 35.0,
    seed: int = 0,
    bearer: BearerMode = BearerMode.DUAL,
    loop_perimeter_m: float | None = None,
) -> Scenario:
    """A downtown walking loop — the D1/D2 and §6.2 iPerf workloads.

    Args:
        band_classes: NR coverage around the loop. One class covers the
            whole loop; several classes split the loop into stretches
            (D2's mixed mmWave/low-band downtown).
    """
    if not band_classes:
        raise ValueError("at least one band class required")
    rng = np.random.default_rng(seed)
    walking_speed = 1.4
    perimeter = loop_perimeter_m or duration_min * 60.0 * walking_speed
    width = perimeter * 0.34
    height = perimeter / 2.0 - width
    route = Polyline.rectangle(width, height)

    builder = DeploymentBuilder(route, carrier, rng)
    stretch = route.length / len(band_classes)
    city_nr_isd = {BandClass.LOW: 900.0, BandClass.MID: 550.0, BandClass.MMWAVE: 120.0}
    for i, band_class in enumerate(band_classes):
        builder.add_segment(
            SegmentConfig(
                i * stretch,
                (i + 1) * stretch if i < len(band_classes) - 1 else route.length,
                lte_isd_m=350.0,
                nr_band_class=band_class,
                nr_isd_m=city_nr_isd[band_class],
                urban=True,
                lateral_offset_m=30.0,
            )
        )
    deployment = builder.build()
    trajectory = WalkingLoopModel(rng).generate(route, duration_min * 60.0)
    names = "+".join(b.value for b in band_classes)
    return Scenario(
        name=f"citywalk/{carrier.name}/{names}",
        deployment=deployment,
        trajectory=trajectory,
        # Downtown anchors tear the SCG down on every anchor handover
        # (§6.1's observation) — the walk datasets show no MNBH.
        config=SimulationConfig(
            bearer=bearer,
            anchor_keeps_scg_probability=0.0,
            scenario_name=f"citywalk-{names}",
        ),
        seed=seed,
    )


def city_drive_scenario(
    carrier: CarrierProfile,
    band_class: BandClass,
    *,
    distance_km: float = 8.0,
    seed: int = 0,
    bearer: BearerMode = BearerMode.DUAL,
) -> Scenario:
    """A city drive loop (the Zoom / cloud-gaming experiment setting)."""
    rng = np.random.default_rng(seed)
    perimeter = distance_km * 1000.0
    width = perimeter * 0.3
    height = perimeter / 2.0 - width
    route = Polyline.rectangle(width, height)
    city_nr_isd = {BandClass.LOW: 900.0, BandClass.MID: 550.0, BandClass.MMWAVE: 130.0}
    deployment = (
        DeploymentBuilder(route, carrier, rng)
        .add_segment(
            SegmentConfig(
                0.0,
                route.length,
                lte_isd_m=400.0,
                nr_band_class=band_class,
                nr_isd_m=city_nr_isd[band_class],
                urban=True,
                lateral_offset_m=40.0,
            )
        )
        .build()
    )
    trajectory = CityDriveModel(rng).generate(route, loops=1)
    return Scenario(
        name=f"citydrive/{carrier.name}/{band_class.value}",
        deployment=deployment,
        trajectory=trajectory,
        config=SimulationConfig(bearer=bearer, scenario_name=f"citydrive-{band_class.value}"),
        seed=seed,
    )


def energy_loop_scenario(
    carrier: CarrierProfile,
    band_class: BandClass | None,
    *,
    length_km: float = 20.0,
    seed: int = 0,
) -> Scenario:
    """The §5.3 energy drive: 130 km/h through dense handover country.

    The paper surveyed spots where handovers fire repeatedly, then drove
    loops at speed; the deployments here are denser than the generic
    freeway so the per-hour HO counts land near the paper's 553 (NSA
    low-band) and 998 (mmWave).
    """
    rng = np.random.default_rng(seed)
    route = Polyline.straight(length_km * 1000.0)
    if band_class is None:
        segment = SegmentConfig(0.0, route.length, lte_isd_m=440.0, nr_band_class=None)
    elif band_class is BandClass.MMWAVE:
        segment = SegmentConfig(
            0.0, route.length, lte_isd_m=450.0, nr_band_class=band_class, nr_isd_m=140.0
        )
    else:
        segment = SegmentConfig(
            0.0, route.length, lte_isd_m=300.0, nr_band_class=band_class, nr_isd_m=300.0
        )
    deployment = DeploymentBuilder(route, carrier, rng).add_segment(segment).build()
    trajectory = FreewayDriveModel(rng, mean_speed_mps=36.1, speed_sigma_mps=1.0).generate(route)
    band = band_class.value if band_class else "LTE-only"
    return Scenario(
        name=f"energy/{carrier.name}/{band}",
        deployment=deployment,
        trajectory=trajectory,
        config=SimulationConfig(scenario_name=f"energy-{band}"),
        seed=seed,
    )


def coverage_scenario(
    carrier: CarrierProfile,
    band_class: BandClass,
    *,
    standalone: bool = False,
    length_km: float = 60.0,
    seed: int = 0,
) -> Scenario:
    """The §6.1 coverage-landscape drive (rural low-band / suburban mid).

    Low-band NR here is the sparse rural n71-style grid (cells every
    ~2.2 km) whose *effective* coverage NSA halves via mid-band anchor
    handovers every ~1.1 km — Fig. 11a. The SA variant runs the same NR
    grid without an anchor.
    """
    rng = np.random.default_rng(seed)
    route = Polyline.straight(length_km * 1000.0)
    if band_class is BandClass.LOW:
        lte_isd, nr_isd, bonus, nr_bonus, per_gnb = 1100.0, 2200.0, 18.0, 6.0, 1
    elif band_class is BandClass.MID:
        lte_isd, nr_isd, bonus, nr_bonus, per_gnb = 600.0, 800.0, 2.0, 2.0, 1
    else:
        lte_isd, nr_isd, bonus, nr_bonus, per_gnb = 450.0, 150.0, 0.0, 0.0, None
    segment = SegmentConfig(
        0.0,
        route.length,
        lte_isd_m=lte_isd,
        nr_band_class=band_class,
        nr_isd_m=nr_isd,
        standalone=standalone,
        eirp_bonus_db=bonus,
        nr_eirp_bonus_db=nr_bonus,
        cells_per_gnb=per_gnb,
    )
    deployment = DeploymentBuilder(route, carrier, rng).add_segment(segment).build()
    trajectory = FreewayDriveModel(rng).generate(route)
    arch = "SA" if standalone else "NSA"
    return Scenario(
        name=f"coverage/{carrier.name}/{arch}/{band_class.value}",
        deployment=deployment,
        trajectory=trajectory,
        # §6.1: on this carrier's low-band an anchor HO *always* tears the
        # SCG down — that is the observed mechanism behind Fig. 11a.
        config=SimulationConfig(
            anchor_keeps_scg_probability=0.0,
            shadow_sigma_scale=0.6 if band_class is BandClass.LOW else 1.0,
            ho_cooldown_s=4.0,
            scenario_name=f"coverage-{band_class.value}-{arch}",
        ),
        seed=seed,
    )
