"""Parallel drive execution with transparent caching.

:func:`run_drives` is the one entry point for turning scenarios into
drive logs. It looks every scenario up in the :class:`DriveCache`
first, simulates only the misses — fanned out over a
``ProcessPoolExecutor`` when ``workers`` > 1 — and returns logs in the
input order.

Determinism is inherent rather than arranged: each
:meth:`Scenario.run` seeds its own ``np.random.default_rng`` from the
scenario seed, so a drive's log is a pure function of the scenario and
identical no matter which worker (or how many workers) produced it.

The pool ships no scenario graphs: misses fan out through
:mod:`repro.simulate.fanout`, which parks the scenario list for fork
inheritance and sends each worker only an index (falling back to
pickling where ``fork`` is unavailable). The pass is supervised
(:mod:`repro.robust`): crashed or hung workers are retried and the
pool degrades to serial execution rather than losing the run, and
every finished drive is published to the cache the moment it
completes.

That incremental publication is also what makes corpus generation
*resumable*: :func:`run_drives_to_store` streams every finished drive
into a sharded :class:`~repro.simulate.corpus.CorpusStore` through the
same exactly-once ``on_result`` hook and returns a lazy
:class:`~repro.simulate.corpus.CorpusView` instead of materialised
logs. Kill a corpus build at drive k of n, rerun, and only the n−k
missing drives simulate — the rest are already committed shards on
disk. (Plain :func:`run_drives` gains the same property whenever its
cache has a corpus store attached, i.e. ``REPRO_CORPUS_DIR`` is set.)

``REPRO_BENCH_WORKERS`` sets the default worker count (1 = serial).
"""

from __future__ import annotations

import os
import warnings
from typing import Sequence

from repro.simulate import fanout
from repro.simulate.cache import DriveCache
from repro.simulate.corpus import CorpusStore, CorpusView
from repro.simulate.records import DriveLog
from repro.simulate.scenarios import Scenario


def default_workers() -> int:
    """Worker count from ``REPRO_BENCH_WORKERS`` (default 1 = serial)."""
    raw = os.environ.get("REPRO_BENCH_WORKERS", "1")
    try:
        return max(1, int(raw))
    except ValueError:
        warnings.warn(
            f"REPRO_BENCH_WORKERS={raw!r} is not an integer; "
            "falling back to 1 worker (serial)",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1


def _run_one(scenario: Scenario) -> DriveLog:
    # Module-level so ProcessPoolExecutor can pickle it by reference.
    return scenario.run()


def _run_one_indexed(job: tuple[int, int]) -> DriveLog:
    # Fork-inherited fan-out worker: resolve the scenario by index.
    token, index = job
    return fanout.payload(token)[index].run()


def run_drives(
    scenarios: Sequence[Scenario],
    workers: int | None = None,
    *,
    cache: DriveCache | None = None,
    use_cache: bool = True,
) -> list[DriveLog]:
    """Simulate ``scenarios``; return their logs in input order.

    Args:
        scenarios: the drives to run.
        workers: process count for the misses. None reads
            ``REPRO_BENCH_WORKERS``; 0/1 runs serially in-process.
        cache: the drive cache to consult/fill. None constructs the
            default (``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` aware).
        use_cache: False bypasses caching entirely for this call.
    """
    scenarios = list(scenarios)
    if workers is None:
        workers = default_workers()
    if cache is None and use_cache:
        cache = DriveCache()

    logs: list[DriveLog | None] = [None] * len(scenarios)
    misses: list[int] = []
    for i, scenario in enumerate(scenarios):
        cached = cache.get(scenario) if use_cache and cache else None
        if cached is not None:
            logs[i] = cached
        else:
            misses.append(i)

    if misses:
        # Publish incrementally: each drive is cached the moment it
        # finishes (in the parent, as pool chunks complete), so a crash
        # at drive 999/1000 loses one drive and a rerun resumes from
        # the cache instead of resimulating the lot.
        def publish(offset: int, log: DriveLog) -> None:
            index = misses[offset]
            logs[index] = log
            if use_cache and cache:
                cache.put(scenarios[index], log)

        if workers <= 1 or len(misses) == 1:
            for offset, i in enumerate(misses):
                publish(offset, _run_one(scenarios[i]))
        else:
            miss_scenarios = [scenarios[i] for i in misses]
            fanout.fanout_map(
                _run_one_indexed,
                miss_scenarios,
                len(miss_scenarios),
                workers,
                fallback_fn=_run_one,
                fallback_jobs=miss_scenarios,
                on_result=publish,
            )

    return logs  # type: ignore[return-value]


def run_drives_to_store(
    scenarios: Sequence[Scenario],
    workers: int | None = None,
    *,
    store: CorpusStore | None = None,
    cache: DriveCache | None = None,
    use_cache: bool = True,
) -> CorpusView:
    """Simulate ``scenarios`` into the corpus store; return a lazy view.

    Out-of-core ``run_drives``: nothing is kept in memory. Drives
    already committed to ``store`` are skipped outright; per-drive
    ``.npz`` cache hits are migrated into the store without
    re-simulating; only genuinely missing drives fan out, and each one
    is appended to the store the moment it finishes (the supervised
    pool's exactly-once ``on_result`` publication). The returned
    :class:`CorpusView` opens memory-mapped slices lazily, in whichever
    process ends up consuming them.

    Because every append commits its shard index atomically, a build
    killed at drive k of n resumes on rerun: the first k drives read
    straight from the shards and only n−k simulate.

    Args:
        scenarios: the drives the corpus should hold.
        workers: process count for the misses. None reads
            ``REPRO_BENCH_WORKERS``; 0/1 runs serially in-process.
        store: the corpus store to fill. None uses the cache's attached
            store, or the default (``REPRO_CORPUS_DIR`` /
            ``REPRO_CORPUS_SHARD_MB`` aware).
        cache: a per-drive cache to consult for migration. None
            constructs the default bound to ``store``.
        use_cache: False skips the per-drive cache consult (the corpus
            store itself is always consulted — it is the output).
    """
    scenarios = list(scenarios)
    if workers is None:
        workers = default_workers()
    if store is None:
        if cache is not None and isinstance(cache.store, CorpusStore):
            store = cache.store
        else:
            store = CorpusStore()
    if not store.enabled:
        raise ValueError(
            "run_drives_to_store needs an enabled CorpusStore "
            "(REPRO_NO_CACHE=1 disables the default one)"
        )
    if cache is None and use_cache:
        cache = DriveCache(store=store)

    keys = [DriveCache.key_for(s) for s in scenarios]
    missing: list[int] = []
    for i, key in enumerate(keys):
        if key in store:
            continue
        if use_cache and cache is not None:
            # A .npz hit migrates into the store inside get_columnar
            # (when the cache is bound to it) — append is a no-op then.
            clog = cache.get_columnar(scenarios[i])
            if clog is not None:
                store.append(key, clog)
                if key in store:
                    continue
        missing.append(i)

    if missing:

        def publish(offset: int, log: DriveLog) -> None:
            store.append(keys[missing[offset]], log.columnar())

        if workers <= 1 or len(missing) == 1:
            for offset, i in enumerate(missing):
                publish(offset, _run_one(scenarios[i]))
        else:
            miss_scenarios = [scenarios[i] for i in missing]
            fanout.fanout_map(
                _run_one_indexed,
                miss_scenarios,
                len(miss_scenarios),
                workers,
                fallback_fn=_run_one,
                fallback_jobs=miss_scenarios,
                on_result=publish,
            )

    return CorpusView(store.root, keys)
