"""Dataset assembly: the paper's Table 1 corpus and the D1/D2 sets.

``build_table1_dataset`` reproduces the cross-country driving dataset at
a configurable mileage scale (simulating the full 6,200 km is possible
but slow; counts and durations scale linearly with distance, so the
bench extrapolates and reports the scale used).

``build_d1_dataset`` / ``build_d2_dataset`` regenerate the two walking
datasets Prognos is evaluated on (§7.3): D1 is 7 traces of a 35-minute
tourist-area loop with mmWave + LTE coverage; D2 is 10 traces of a
25-minute downtown loop that adds low-band 5G. Both are logged at
20 Hz for OpX.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.net.emulation import BandwidthTrace
from repro.radio.bands import BandClass
from repro.ran.carrier import CARRIERS, CarrierProfile, OPX, OPY
from repro.rrc.taxonomy import HandoverType
from repro.simulate.records import DriveLog
from repro.simulate.scenarios import (
    Scenario,
    city_drive_scenario,
    city_walk_scenario,
    freeway_scenario,
)
from repro.ue.state import RadioMode


@dataclass(slots=True)
class DatasetSummary:
    """One carrier's row of Table 1 (extrapolated to full mileage)."""

    carrier: str
    unique_cells: int
    nr_band_count: int
    lte_band_count: int
    city_km: float
    freeway_km: float
    lte_handovers: int
    nsa_procedures: int
    sa_handovers: int | None
    minutes_low: float
    minutes_mid: float
    minutes_mmwave: float
    minutes_nsa: float
    minutes_sa: float | None
    minutes_lte: float


def _count_lte_hos(logs: list[DriveLog]) -> int:
    return sum(len(log.handovers_of(HandoverType.LTEH, HandoverType.MNBH)) for log in logs)


def _count_nsa_procedures(logs: list[DriveLog]) -> int:
    return sum(
        len(
            log.handovers_of(
                HandoverType.SCGA, HandoverType.SCGR, HandoverType.SCGM, HandoverType.SCGC
            )
        )
        for log in logs
    )


def _minutes_in_band(logs: list[DriveLog], band_class: BandClass) -> float:
    total = 0.0
    for log in logs:
        dt = log.tick_interval_s
        total += sum(dt for t in log.ticks if t.nr_band_class is band_class) / 60.0
    return total


def _minutes_in_mode(logs: list[DriveLog], mode: RadioMode) -> float:
    return sum(log.time_in_mode_s(mode) for log in logs) / 60.0


def build_table1_dataset(
    *,
    scale: float = 0.01,
    seed: int = 2022,
    carriers: dict[str, CarrierProfile] | None = None,
) -> dict[str, DatasetSummary]:
    """Simulate the cross-country trip at ``scale`` of the paper's mileage.

    Per carrier we drive the freeway mileage split across that carrier's
    NR deployments (plus LTE-only stretches) and the city mileage on the
    dense urban deployment, then extrapolate counts back to full mileage.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must lie in (0, 1]")
    summaries: dict[str, DatasetSummary] = {}
    paper_city_km = {"OpX": 697.0, "OpY": 712.0, "OpZ": 652.0}
    paper_freeway_km = {"OpX": 4855.0, "OpY": 5560.0, "OpZ": 4855.0}

    for name, carrier in (carriers or CARRIERS).items():
        freeway_km = paper_freeway_km[name] * scale
        city_km = paper_city_km[name] * scale
        logs: list[DriveLog] = []
        sa_logs: list[DriveLog] = []

        # Freeway mileage: split across the carrier's coverage mix.
        # Low-band NR dominates rural interstates; part of the mileage is
        # LTE-only (5G coverage gaps); OpY additionally runs SA stretches.
        shares: list[tuple[BandClass | None, bool, float]] = []
        if carrier.supports_sa:
            shares = [
                (BandClass.LOW, False, 0.45),
                (BandClass.MID, False, 0.25),
                (None, False, 0.20),
                (BandClass.LOW, True, 0.10),
            ]
        else:
            shares = [(BandClass.LOW, False, 0.65), (None, False, 0.35)]
        for i, (band_class, standalone, share) in enumerate(shares):
            scenario = freeway_scenario(
                carrier,
                band_class,
                standalone=standalone,
                length_km=max(freeway_km * share, 2.0),
                seed=seed + i * 17,
            )
            log = scenario.run()
            (sa_logs if standalone else logs).append(log)

        # City mileage on the dense urban grid (mmWave where deployed,
        # otherwise the carrier's best sub-6 layer).
        city_band = (
            BandClass.MMWAVE
            if BandClass.MMWAVE in carrier.nr_bands
            else (BandClass.MID if BandClass.MID in carrier.nr_bands else BandClass.LOW)
        )
        city = city_drive_scenario(
            carrier, city_band, distance_km=max(city_km, 2.0), seed=seed + 91
        ).run()
        logs.append(city)

        all_logs = logs + sa_logs
        factor = 1.0 / scale
        unique = set()
        for log in all_logs:
            unique |= log.unique_cells_seen()
        summaries[name] = DatasetSummary(
            carrier=name,
            unique_cells=int(len(unique) * factor),
            nr_band_count=len(carrier.nr_bands),
            lte_band_count=len(carrier.lte_bands),
            city_km=city_km * factor,
            freeway_km=freeway_km * factor,
            lte_handovers=int(_count_lte_hos(all_logs) * factor),
            nsa_procedures=int(_count_nsa_procedures(logs) * factor),
            sa_handovers=(
                int(sum(len(l.handovers_of(HandoverType.MCGH)) for l in sa_logs) * factor)
                if carrier.supports_sa
                else None
            ),
            minutes_low=_minutes_in_band(logs, BandClass.LOW) * factor,
            minutes_mid=_minutes_in_band(logs, BandClass.MID) * factor,
            minutes_mmwave=_minutes_in_band(logs, BandClass.MMWAVE) * factor,
            minutes_nsa=_minutes_in_mode(logs, RadioMode.NSA) * factor,
            minutes_sa=(
                _minutes_in_mode(sa_logs, RadioMode.SA) * factor
                if carrier.supports_sa
                else None
            ),
            minutes_lte=_minutes_in_mode(logs, RadioMode.LTE) * factor,
        )
    return summaries


def build_d1_dataset(
    *,
    traces: int = 7,
    seed: int = 41,
    duration_min: float = 35.0,
    workers: int | None = None,
) -> list[DriveLog]:
    """D1: walking loops of a tourist area (mmWave 5G + mid-band LTE)."""
    from repro.simulate.runner import run_drives

    return run_drives(
        [
            city_walk_scenario(
                OPX,
                (BandClass.MMWAVE,),
                duration_min=duration_min,
                seed=seed + i,
            )
            for i in range(traces)
        ],
        workers=workers,
    )


def build_d2_dataset(
    *,
    traces: int = 10,
    seed: int = 97,
    duration_min: float = 25.0,
    workers: int | None = None,
) -> list[DriveLog]:
    """D2: downtown walking loops (mmWave + low-band 5G + LTE)."""
    from repro.simulate.runner import run_drives

    return run_drives(
        [
            city_walk_scenario(
                OPX,
                (BandClass.MMWAVE, BandClass.LOW),
                duration_min=duration_min,
                seed=seed + i,
            )
            for i in range(traces)
        ],
        workers=workers,
    )


def build_abr_traces(
    logs: list[DriveLog],
    *,
    window_s: float = 240.0,
    stride_s: float = 120.0,
    max_avg_mbps: float = 400.0,
    min_floor_mbps: float = 2.0,
    minimum: int = 0,
) -> list[BandwidthTrace]:
    """Slice §7.4-style ABR traces out of drive logs.

    Mirrors the paper's filtering (after Mao et al.): keep 240-second
    sliding windows whose average bandwidth is below 400 Mbps (otherwise
    quality selection is trivial) and whose minimum stays above 2 Mbps.
    """
    traces: list[BandwidthTrace] = []
    for log in logs:
        times, caps = log.capacity_series()
        if len(times) < 2:
            continue
        start = float(times[0])
        while start + window_s <= float(times[-1]):
            mask = (times >= start) & (times < start + window_s)
            window_caps = caps[mask]
            if len(window_caps) >= 2:
                avg = float(np.mean(window_caps))
                floor = float(np.min(window_caps))
                if avg <= max_avg_mbps and floor >= min_floor_mbps:
                    traces.append(
                        BandwidthTrace(
                            times_s=times[mask] - start,
                            capacity_mbps=window_caps.copy(),
                        )
                    )
            start += stride_s
    if minimum and len(traces) < minimum:
        raise RuntimeError(
            f"only {len(traces)} traces matched the ABR filter (needed {minimum})"
        )
    return traces
