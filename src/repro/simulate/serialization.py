"""DriveLog serialization — the repository's artifact format.

The paper released its dataset as flat files; this module gives the
reproduction the same workflow: dump a :class:`DriveLog` to a compact
JSON document (optionally gzipped by file suffix) and load it back,
bit-identical in every field the analyses consume. Useful for caching
expensive simulations and for shipping generated datasets.

``FORMAT_VERSION`` gates every on-disk drive-log codec — this JSON
artifact format and the packed ``.npz`` columnar codec in
:mod:`repro.simulate.columnar`. Version 2 fixed optional-enum decoding
(``is not None`` instead of truthiness, so falsy enum values survive
round-trips) and added the columnar sibling; version-1 files are
rejected rather than risk decoding differently.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

from repro.net.bearer import BearerMode
from repro.radio.bands import BandClass
from repro.radio.rrs import RRSSample
from repro.rrc.signaling import SignalingTally
from repro.rrc.taxonomy import HandoverType
from repro.simulate.records import (
    DriveLog,
    HandoverRecord,
    NeighbourObservation,
    ReportRecord,
    TickRecord,
)
from repro.ue.state import RadioMode

FORMAT_VERSION = 2


def _rrs_to_list(sample: RRSSample | None) -> list[float] | None:
    if sample is None:
        return None
    return [sample.rsrp_dbm, sample.rsrq_db, sample.sinr_db]


def _rrs_from_list(values: list[float] | None) -> RRSSample | None:
    if values is None:
        return None
    return RRSSample(rsrp_dbm=values[0], rsrq_db=values[1], sinr_db=values[2])


def _neighbours_to_list(neighbours) -> list:
    return [
        [obs.gci, obs.pci, _rrs_to_list(obs.rrs), obs.in_a3_scope] for obs in neighbours
    ]


def _neighbours_from_list(payload) -> tuple[NeighbourObservation, ...]:
    return tuple(
        NeighbourObservation(
            gci=item[0], pci=item[1], rrs=_rrs_from_list(item[2]), in_a3_scope=item[3]
        )
        for item in payload
    )


def log_to_dict(log: DriveLog) -> dict:
    """Serialise a drive log to a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "carrier": log.carrier,
        "bearer": log.bearer.value if log.bearer is not None else None,
        "scenario": log.scenario,
        "ticks": [
            [
                t.time_s,
                t.arc_m,
                t.x_m,
                t.y_m,
                t.speed_mps,
                t.mode.value,
                t.lte_serving_gci,
                t.lte_serving_pci,
                t.nr_serving_gci,
                t.nr_serving_pci,
                t.nr_band_class.value if t.nr_band_class is not None else None,
                _rrs_to_list(t.lte_rrs),
                _rrs_to_list(t.nr_rrs),
                _neighbours_to_list(t.lte_neighbours),
                _neighbours_to_list(t.nr_neighbours),
                t.lte_capacity_mbps,
                t.nr_capacity_mbps,
                t.total_capacity_mbps,
                t.lte_interrupted,
                t.nr_interrupted,
            ]
            for t in log.ticks
        ],
        "reports": [
            [
                r.time_s,
                r.label,
                r.serving_gci,
                r.neighbour_gci,
                _rrs_to_list(r.serving_rrs),
                _rrs_to_list(r.neighbour_rrs),
            ]
            for r in log.reports
        ],
        "handovers": [
            {
                "type": h.ho_type.name,
                "decision_time_s": h.decision_time_s,
                "exec_start_s": h.exec_start_s,
                "complete_s": h.complete_s,
                "t1_ms": h.t1_ms,
                "t2_ms": h.t2_ms,
                "mode_before": h.mode_before.value,
                "mode_after": h.mode_after.value,
                "source_gci": h.source_gci,
                "target_gci": h.target_gci,
                "source_pci": h.source_pci,
                "target_pci": h.target_pci,
                "band_class": h.band_class.value if h.band_class is not None else None,
                "arc_m": h.arc_m,
                "colocated": h.colocated,
                "same_pci_legs": h.same_pci_legs,
                "trigger_labels": list(h.trigger_labels),
                "signaling": [
                    h.signaling.rrc_measurement_reports,
                    h.signaling.rrc_reconfigurations,
                    h.signaling.rrc_reconfiguration_completes,
                    h.signaling.rach_procedures,
                    h.signaling.phy_ssb_measurements,
                ],
                "energy_j": h.energy_j,
            }
            for h in log.handovers
        ],
    }


def log_from_dict(payload: dict) -> DriveLog:
    """Rebuild a drive log from :func:`log_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported drive-log format version {version!r}")
    mode_by_value = {m.value: m for m in RadioMode}
    band_by_value = {b.value: b for b in BandClass}
    ticks = [
        TickRecord(
            time_s=row[0],
            arc_m=row[1],
            x_m=row[2],
            y_m=row[3],
            speed_mps=row[4],
            mode=mode_by_value[row[5]],
            lte_serving_gci=row[6],
            lte_serving_pci=row[7],
            nr_serving_gci=row[8],
            nr_serving_pci=row[9],
            nr_band_class=band_by_value[row[10]] if row[10] is not None else None,
            lte_rrs=_rrs_from_list(row[11]),
            nr_rrs=_rrs_from_list(row[12]),
            lte_neighbours=_neighbours_from_list(row[13]),
            nr_neighbours=_neighbours_from_list(row[14]),
            lte_capacity_mbps=row[15],
            nr_capacity_mbps=row[16],
            total_capacity_mbps=row[17],
            lte_interrupted=row[18],
            nr_interrupted=row[19],
        )
        for row in payload["ticks"]
    ]
    reports = [
        ReportRecord(
            time_s=row[0],
            label=row[1],
            serving_gci=row[2],
            neighbour_gci=row[3],
            serving_rrs=_rrs_from_list(row[4]),
            neighbour_rrs=_rrs_from_list(row[5]),
        )
        for row in payload["reports"]
    ]
    handovers = [
        HandoverRecord(
            ho_type=HandoverType[h["type"]],
            decision_time_s=h["decision_time_s"],
            exec_start_s=h["exec_start_s"],
            complete_s=h["complete_s"],
            t1_ms=h["t1_ms"],
            t2_ms=h["t2_ms"],
            mode_before=mode_by_value[h["mode_before"]],
            mode_after=mode_by_value[h["mode_after"]],
            source_gci=h["source_gci"],
            target_gci=h["target_gci"],
            source_pci=h["source_pci"],
            target_pci=h["target_pci"],
            band_class=band_by_value[h["band_class"]]
            if h["band_class"] is not None
            else None,
            arc_m=h["arc_m"],
            colocated=h["colocated"],
            same_pci_legs=h["same_pci_legs"],
            trigger_labels=tuple(h["trigger_labels"]),
            signaling=SignalingTally(*h["signaling"]),
            energy_j=h["energy_j"],
        )
        for h in payload["handovers"]
    ]
    bearer = BearerMode(payload["bearer"]) if payload["bearer"] is not None else None
    return DriveLog(
        payload["carrier"],
        bearer,
        ticks,
        reports,
        handovers,
        scenario=payload.get("scenario", ""),
    )


def save_log(log: DriveLog, path: str | Path) -> Path:
    """Write a drive log to ``path`` (gzipped when it ends in ``.gz``)."""
    path = Path(path)
    text = json.dumps(log_to_dict(log), separators=(",", ":"))
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(text)
    else:
        path.write_text(text, encoding="utf-8")
    return path


def load_log(path: str | Path) -> DriveLog:
    """Read a drive log written by :func:`save_log`."""
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
    else:
        payload = json.loads(path.read_text(encoding="utf-8"))
    return log_from_dict(payload)
