"""Zero-copy corpus fan-out for the repository's worker pools.

The pools in :func:`repro.simulate.runner.run_drives`,
:func:`repro.core.evaluation.run_prognos_over_logs`,
:func:`repro.core.evaluation.table3`, and
:func:`repro.apps.abr.player.play_many` used to pickle their whole
payload — 20 Hz :class:`DriveLog` objects, bandwidth traces, scenario
graphs — once per job. At megabytes per log, per-job shipping dwarfed
the per-job compute below bench scale, so the pools only ever won on
the largest corpora.

This module replaces the shipping with fork inheritance: the payload is
parked in a module-level registry, the pool is created with the
``fork`` start method *after* registration, and each job ships only a
``(token, index)`` pair — tens of bytes. The forked child reads the
payload out of its inherited copy of the registry (copy-on-write pages,
no serialization, no re-deriving of parent-process memoisation such as
:func:`repro.simulate.cache.code_version_token`). Jobs are mapped with
a computed ``chunksize`` so a pool pass costs a handful of IPC
round-trips instead of one per job.

On platforms whose default start method is ``spawn`` (Windows, macOS)
the ``fork`` context is unavailable or unsafe to assume; ``fanout_map``
transparently falls back to the original pickle-per-job path there, so
results are identical everywhere — only the shipping cost differs.
``REPRO_FORCE_SPAWN=1`` forces that fallback on any platform, so Linux
CI exercises the non-fork branch too.

Since the supervised-execution PR, :func:`fanout_map` routes every pool
pass through :func:`repro.robust.supervisor.supervised_map`, which adds
per-job timeouts, bounded retries, broken-pool recovery, and
incremental result publication on top of the same shipping scheme. The
pre-supervision implementation is retained verbatim as
:func:`fanout_map_unsupervised` — the bit-identical reference the
equivalence tests and the supervision-overhead bench compare against.

With the sharded corpus store (:mod:`repro.simulate.corpus`), the
registry no longer needs to hold in-memory corpora at all for
store-backed passes: callers park lists of
:class:`~repro.simulate.corpus.DriveRef` pointers — ``(store_path,
drive_id)`` pairs, tens of bytes each — and every worker (fork *and*
spawn fallback alike) opens read-only memory-mapped slices lazily via
its process-local store handle. The fork pages stay tiny, the spawn
pickles stay tiny, and a worker faults in only the array pages its job
actually scans.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

#: Fork-inherited payload slots, keyed by token. Only ever mutated in
#: the parent *before* pool creation; children see a frozen snapshot.
_REGISTRY: dict[int, Any] = {}
_tokens = itertools.count()


def payload(token: int) -> Any:
    """The registered payload for ``token`` (valid in forked workers)."""
    return _REGISTRY[token]


@contextmanager
def shared_payload(value: Any) -> Iterator[int]:
    """Park ``value`` for fork inheritance; yields its registry token."""
    token = next(_tokens)
    _REGISTRY[token] = value
    try:
        yield token
    finally:
        _REGISTRY.pop(token, None)


def fork_context():
    """The ``fork`` multiprocessing context, or None where unsupported."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def force_spawn() -> bool:
    """True when ``REPRO_FORCE_SPAWN=1`` demands the pickle fallback."""
    return os.environ.get("REPRO_FORCE_SPAWN", "") == "1"


def pool_chunksize(jobs: int, workers: int) -> int:
    """Batch jobs so each worker drains ~4 chunks, not one IPC per job."""
    return max(1, jobs // (max(1, workers) * 4))


def fanout_map(
    indexed_fn: Callable[[tuple[int, int]], Any],
    payload_value: Any,
    count: int,
    workers: int,
    *,
    fallback_fn: Callable[[Any], Any],
    fallback_jobs: Sequence[Any],
    on_result: Callable[[int, Any], None] | None = None,
) -> list[Any]:
    """Map ``count`` jobs over a supervised pool, shipping no corpus.

    Args:
        indexed_fn: module-level worker taking ``(token, index)`` and
            resolving the payload via :func:`payload`.
        payload_value: the corpus the jobs index into (fork-inherited).
        count: number of jobs (indices ``0..count-1``).
        workers: requested pool width (capped at ``count``).
        fallback_fn: module-level worker taking one pickled job — used
            where ``fork`` is unavailable or ``REPRO_FORCE_SPAWN=1``.
        fallback_jobs: the ``count`` pickled jobs for ``fallback_fn``.
        on_result: optional ``(index, result)`` callback fired in the
            parent as each job first completes, so callers can publish
            results incrementally instead of after the whole pass.

    Results come back in index order for either path, bit-identical to
    :func:`fanout_map_unsupervised`; the supervision (timeouts,
    retries, pool recovery, serial degradation) lives in
    :mod:`repro.robust.supervisor`.
    """
    from repro.robust.supervisor import supervised_map

    return supervised_map(
        indexed_fn,
        payload_value,
        count,
        workers,
        fallback_fn=fallback_fn,
        fallback_jobs=fallback_jobs,
        on_result=on_result,
    )


def fanout_map_unsupervised(
    indexed_fn: Callable[[tuple[int, int]], Any],
    payload_value: Any,
    count: int,
    workers: int,
    *,
    fallback_fn: Callable[[Any], Any],
    fallback_jobs: Sequence[Any],
) -> list[Any]:
    """The pre-supervision pool pass (reference for equivalence/overhead).

    One plain ``pool.map`` with no recovery: a crashed or hung worker
    loses the whole pass. Kept verbatim so tests can pin
    :func:`fanout_map` output against it and the fan-out bench can
    price supervision.
    """
    workers = max(1, min(workers, count))
    chunk = pool_chunksize(count, workers)
    ctx = None if force_spawn() else fork_context()
    if ctx is None:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fallback_fn, fallback_jobs, chunksize=chunk))
    with shared_payload(payload_value) as token:
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            return list(
                pool.map(
                    indexed_fn,
                    ((token, i) for i in range(count)),
                    chunksize=chunk,
                )
            )
