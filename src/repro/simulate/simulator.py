"""The drive-test simulator.

Walks a UE along a trajectory through a deployment at the logging rate,
running per tick:

1. radio measurement of every audible cell (RRS synthesis),
2. the UE-side event monitor (Table 4 events with TTT),
3. the carrier's handover policy over fresh measurement reports,
4. handover execution with T1/T2 staging, data-plane interruption,
   signaling accounting and energy attribution,
5. per-leg capacity under the configured NSA bearer mode.

The output :class:`DriveLog` is the in-silico equivalent of the paper's
XCAL + 5G Tracker capture.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.mobility.trajectory import Trajectory
from repro.net.bearer import BearerMode
from repro.net.capacity import CapacityModel
from repro.radio.bands import BandClass, RadioAccessTechnology
from repro.radio.rrs import RadioEnvironment, RRSSample, ScalarRadioEnvironment
from repro.ran.cells import Cell
from repro.ran.deployment import Deployment, SegmentConfig
from repro.rrc.events import MeasurementObject
from repro.rrc.handover import HandoverExecution, HandoverTimingModel
from repro.rrc.measurement import EventMonitor, L3Filter, MeasurementReport, ObjectView
from repro.rrc.policy import AttachmentState, HandoverDecision, HandoverPolicy
from repro.rrc.signaling import SignalingModel
from repro.rrc.taxonomy import HandoverType
from repro.simulate.records import (
    DriveLog,
    HandoverRecord,
    NeighbourObservation,
    ReportRecord,
    TickRecord,
)
from repro.ue.energy import EnergyModel
from repro.ue.state import RadioMode, UEState


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Knobs of one simulation run."""

    bearer: BearerMode = BearerMode.DUAL
    neighbour_top_k: int = 3
    #: Re-scan the audible cell set every this many ticks.
    audible_refresh_ticks: int = 20
    #: Probability an anchor HO keeps the SCG alive (MNBH) vs. tearing it
    #: down (§6.1 observes carriers where this is ~0 on low-band).
    anchor_keeps_scg_probability: float = 0.3
    #: Co-channel interference load factor (None = per-band defaults).
    interference_load: float | None = None
    #: L3 filter coefficient applied before event evaluation.
    l3_filter_alpha: float = 0.16
    #: Handover prohibit timer: after a procedure completes, the network
    #: holds off further decisions this long (ping-pong damping; 3GPP
    #: T304-style prohibit behaviour carriers deploy in practice).
    ho_cooldown_s: float = 1.0
    #: Shadowing sigma multiplier (open rural terrain shadows less than
    #: the suburban defaults).
    shadow_sigma_scale: float = 1.0
    #: §6.2's proposed carrier fix: SCG Change picks the strongest
    #: qualifying target instead of the first one (ablation knob).
    quality_aware_scgc: bool = False
    #: Use the vectorized radio pipeline (False selects the scalar
    #: reference implementation — equivalence tests / bench baseline).
    vectorized_radio: bool = True
    #: Evict a cell's propagation state after it has been absent from the
    #: measured set for this many audible-set refreshes (None = never).
    #: Only the vectorized radio pipeline evicts.
    cell_evict_refreshes: int | None = 60
    scenario_name: str = ""


_MASTER_TYPES = (HandoverType.LTEH, HandoverType.MNBH, HandoverType.MCGH)


def _slot_of(ho_type: HandoverType) -> str:
    """Which node executes the procedure: the master or the secondary."""
    return "master" if ho_type in _MASTER_TYPES else "scg"


@dataclass(slots=True)
class _PendingHandover:
    decision: HandoverDecision
    execution: HandoverExecution
    decision_time_s: float
    exec_start_s: float
    complete_s: float
    mode_before: RadioMode
    source: Cell | None
    colocated: bool
    same_pci: bool | None
    arc_m: float
    reports_consumed: int


@dataclass(slots=True)
class _NrAttachInfo:
    time_s: float
    cross_gnb: bool


class DriveSimulator:
    """Simulates one drive of one UE on one carrier."""

    def __init__(
        self,
        deployment: Deployment,
        trajectory: Trajectory,
        rng: np.random.Generator,
        config: SimulationConfig | None = None,
    ):
        self._deployment = deployment
        self._trajectory = trajectory
        self._rng = rng
        self._config = config or SimulationConfig()
        self._carrier = deployment.carrier
        tick = trajectory.tick_interval_s or 0.05
        env_kwargs = dict(
            interference_load=self._config.interference_load,
            speed_mps=max(trajectory.mean_speed_mps, 1.0),
            sample_interval_s=tick,
            urban=any(s.urban for s in deployment.segments),
            shadow_sigma_scale=self._config.shadow_sigma_scale,
        )
        self._vectorized = self._config.vectorized_radio
        if self._vectorized:
            # One measure_block call per audible refresh window = one
            # measurement round, so the refresh count maps directly.
            self._env = RadioEnvironment(
                rng,
                **env_kwargs,
                evict_after_measures=self._config.cell_evict_refreshes,
            )
        else:
            self._env = ScalarRadioEnvironment(rng, **env_kwargs)
        # The control plane (policy coin flips, HO timing, signaling,
        # energy) draws from a spawned child stream: the block path pulls
        # a whole window's radio draws upfront, so control draws may not
        # interleave with the radio stream if scalar and vectorized runs
        # are to consume it identically.
        ctrl_rng = rng.spawn(1)[0]
        self._policy = HandoverPolicy(
            ctrl_rng,
            anchor_keeps_scg_probability=self._config.anchor_keeps_scg_probability,
            quality_aware_scgc=self._config.quality_aware_scgc,
        )
        self._timing = HandoverTimingModel(
            ctrl_rng, t1_scale=self._carrier.t1_scale, t2_scale=self._carrier.t2_scale
        )
        self._signaling = SignalingModel(ctrl_rng)
        self._energy = EnergyModel(ctrl_rng)
        self._capacity = CapacityModel()

        first_segment = deployment.segments[0]
        self._standalone = first_segment.standalone
        if any(s.standalone != self._standalone for s in deployment.segments):
            raise ValueError(
                "mixed SA/NSA segments in one run are not supported; "
                "simulate them as separate drives"
            )
        self._ue = UEState(standalone=self._standalone)
        self._l3 = L3Filter(alpha=self._config.l3_filter_alpha)
        self._monitor: EventMonitor | None = None
        self._monitor_band: BandClass | None = None
        # The master node (eNB / SA gNB) and the secondary node execute
        # procedures independently — one pending slot and cooldown each.
        self._pending_master: _PendingHandover | None = None
        self._pending_scg: _PendingHandover | None = None
        self._cooldown_master_s = float("-inf")
        self._cooldown_scg_s = float("-inf")
        #: Reports not yet consumed by a decision — the current "phase".
        #: Entries expire after a few seconds (stale radio state); the
        #: deque lets expiry pop from the left without rebuilding.
        self._report_buffer: deque[MeasurementReport] = deque()
        #: All reports sent since the last decision (signaling accounting
        #: — unlike the buffer, these never expire within a phase).
        self._phase_report_count = 0
        self._nr_attach: _NrAttachInfo | None = None
        self._audible: list[Cell] = []
        self._audible_gen = 0
        self._measured_key: int | None = None
        self._measured_cells: list[Cell] = []
        self._measured_x = np.empty(0)
        self._measured_y = np.empty(0)
        self._current_segment: SegmentConfig | None = None
        #: Records synthesised alongside a primary one (coupled SCGR).
        self._extra_records: list[HandoverRecord] = []

    # ------------------------------------------------------------------

    def run(self) -> DriveLog:
        """Execute the drive and return the full log."""
        if self._vectorized:
            return self._run_vectorized()
        return self._run_scalar()

    def _finish(self, ticks, reports_log, handovers) -> DriveLog:
        return DriveLog(
            self._carrier.name,
            None if self._standalone else self._config.bearer,
            ticks,
            reports_log,
            handovers,
            scenario=self._config.scenario_name,
        )

    def _run_scalar(self) -> DriveLog:
        """Reference per-tick loop over the scalar radio pipeline."""
        ticks: list[TickRecord] = []
        reports_log: list[ReportRecord] = []
        handovers: list[HandoverRecord] = []
        top_k = self._config.neighbour_top_k

        for index, sample in enumerate(self._trajectory):
            time_s = sample.time_s
            segment = self._deployment.segment_at(
                sample.arc_m % self._trajectory.route.length
                if self._trajectory.route.length > 0
                else sample.arc_m
            )
            self._refresh_segment(segment)
            if index % self._config.audible_refresh_ticks == 0 or not self._audible:
                self._audible = self._deployment.audible_cells(sample.position)
                self._audible_gen += 1
                for cell in self._audible:
                    self._env.register(cell, cell.band, cell.eirp_dbm)
            measured = self._measured_set()

            # The UE evaluates events on L3-filtered measurements; the
            # raw per-tick samples still drive capacity and the logs.
            distances_map = {
                cell: cell.distance_to(sample.position) for cell in measured
            }
            raw_samples = self._env.measure(distances_map, sample.arc_m)
            samples = self._l3.update(time_s, raw_samples)
            lte_samples = {
                c: s for c, s in samples.items() if c.rat is RadioAccessTechnology.LTE
            }
            nr_samples = {
                c: s for c, s in samples.items() if c.rat is RadioAccessTechnology.NR
            }

            self._bootstrap_attachment(lte_samples, nr_samples)

            lte_serving = self._ue.lte_serving
            nr_serving = self._ue.nr_serving
            lte_serving_sample = lte_samples.get(lte_serving) if lte_serving else None
            nr_serving_sample = nr_samples.get(nr_serving) if nr_serving else None
            lte_serving_raw = raw_samples.get(lte_serving) if lte_serving else None
            nr_serving_raw = raw_samples.get(nr_serving) if nr_serving else None

            # --- event monitoring ---
            new_reports: list[MeasurementReport] = []
            if self._monitor is not None and (lte_serving or nr_serving or nr_samples):
                serving_map = {
                    MeasurementObject.LTE: (
                        (lte_serving, lte_serving_sample)
                        if lte_serving is not None and lte_serving_sample is not None
                        else None
                    ),
                    MeasurementObject.NR: (
                        (nr_serving, nr_serving_sample)
                        if nr_serving is not None and nr_serving_sample is not None
                        else None
                    ),
                }
                neighbour_map = {
                    MeasurementObject.LTE: {
                        c: s for c, s in lte_samples.items() if c is not lte_serving
                    },
                    MeasurementObject.NR: {
                        c: s for c, s in nr_samples.items() if c is not nr_serving
                    },
                }
                new_reports = self._monitor.observe(time_s, serving_map, neighbour_map)
                self._log_reports(reports_log, new_reports, time_s)

            # --- handover progression / decision ---
            self._progress_handovers(time_s, new_reports, handovers)
            if self._report_buffer and segment is not None:
                self._maybe_decide(
                    time_s, sample.arc_m, self._report_buffer, nr_samples, segment
                )

            # --- capacity and logging (raw samples drive the PHY) ---
            lte_neigh = _top_neighbours(lte_samples, self._ue.lte_serving, top_k)
            nr_neigh = _top_neighbours(nr_samples, self._ue.nr_serving, top_k)
            ticks.append(
                self._tick_record(
                    sample, lte_serving_raw, nr_serving_raw, lte_neigh, nr_neigh, time_s
                )
            )
        return self._finish(ticks, reports_log, handovers)

    def _run_vectorized(self) -> DriveLog:
        """Block-based loop over the vectorized radio pipeline.

        The measured cell set is fixed between audible refreshes, so the
        whole refresh window is measured and L3-filtered in one
        (ticks, cells) block; the per-tick work that remains — events,
        handover progression, logging — runs on array rows and only
        materialises sample objects where the log needs them. Produces
        the same DriveLog as :meth:`_run_scalar` (the generator stream,
        report order and all derived decisions match).
        """
        ticks: list[TickRecord] = []
        reports_log: list[ReportRecord] = []
        handovers: list[HandoverRecord] = []
        top_k = self._config.neighbour_top_k
        refresh = self._config.audible_refresh_ticks
        traj_samples = list(self._trajectory)
        total = len(traj_samples)
        route_len = self._trajectory.route.length
        count = total
        xs = np.fromiter((s.position.x for s in traj_samples), dtype=float, count=count)
        ys = np.fromiter((s.position.y for s in traj_samples), dtype=float, count=count)
        arcs = np.fromiter((s.arc_m for s in traj_samples), dtype=float, count=count)
        times = np.fromiter((s.time_s for s in traj_samples), dtype=float, count=count)

        lte_obj, nr_obj = MeasurementObject.LTE, MeasurementObject.NR
        index = 0
        while index < total:
            # --- refresh the audible set; block runs to the next refresh
            # boundary (every tick re-scans while nothing is audible, as
            # in the scalar loop).
            self._audible = self._deployment.audible_cells(
                traj_samples[index].position
            )
            self._audible_gen += 1
            for cell in self._audible:
                self._env.register(cell, cell.band, cell.eirp_dbm)
            measured = self._measured_set()
            if not self._audible:
                end = index + 1
            else:
                end = min((index // refresh + 1) * refresh, total)

            # --- one radio + L3 block for the whole window ---
            distances = np.hypot(
                xs[index:end, None] - self._measured_x[None, :],
                ys[index:end, None] - self._measured_y[None, :],
            )
            block = self._env.measure_block(measured, distances, arcs[index:end])
            slots = self._l3.slot_array(measured)
            f_rsrp, f_rsrq, f_sinr = self._l3.update_block(
                times[index:end], slots, block.rsrp, block.rsrq, block.sinr,
                block.audible,
            )

            # --- block-fixed per-object structure ---
            lte_pos_l: list[int] = []
            nr_pos_l: list[int] = []
            for i, cell in enumerate(measured):
                if cell.rat is RadioAccessTechnology.LTE:
                    lte_pos_l.append(i)
                else:
                    nr_pos_l.append(i)
            lte_cells = [measured[i] for i in lte_pos_l]
            nr_cells = [measured[i] for i in nr_pos_l]
            # Nested-list mirrors of the block arrays: the per-tick loop
            # reads single elements, where python lists beat numpy scalar
            # boxing by an order of magnitude.
            sm_rsrp, sm_rsrq, sm_sinr = (
                f_rsrp.tolist(), f_rsrq.tolist(), f_sinr.tolist(),
            )
            raw_rsrp, raw_rsrq, raw_sinr = (
                block.rsrp.tolist(), block.rsrq.tolist(), block.sinr.tolist(),
            )
            row = {}

            def _smoothed_at(gp: int) -> RRSSample:
                return RRSSample(
                    rsrp_dbm=row["rsrp"][gp],
                    rsrq_db=row["rsrq"][gp],
                    sinr_db=row["sinr"][gp],
                )

            lte_view = ObjectView(
                cells=lte_cells,
                pos_of={c: j for j, c in enumerate(lte_cells)},
                token=self._audible_gen,
                rsrp_block=f_rsrp[:, lte_pos_l],
                mask_block=block.audible[:, lte_pos_l],
                sample_at=lambda p: _smoothed_at(lte_pos_l[p]),
            )
            nr_view = ObjectView(
                cells=nr_cells,
                pos_of={c: j for j, c in enumerate(nr_cells)},
                token=self._audible_gen,
                rsrp_block=f_rsrp[:, nr_pos_l],
                mask_block=block.audible[:, nr_pos_l],
                sample_at=lambda p: _smoothed_at(nr_pos_l[p]),
            )
            lte_view.rsrp_rows = lte_view.rsrp_block.tolist()
            lte_view.rsrq_rows = f_rsrq[:, lte_pos_l].tolist()
            lte_view.sinr_rows = f_sinr[:, lte_pos_l].tolist()
            lte_view.mask_rows = lte_view.mask_block.tolist()
            nr_view.rsrp_rows = nr_view.rsrp_block.tolist()
            nr_view.rsrq_rows = f_rsrq[:, nr_pos_l].tolist()
            nr_view.sinr_rows = f_sinr[:, nr_pos_l].tolist()
            nr_view.mask_rows = nr_view.mask_block.tolist()
            views = {lte_obj: lte_view, nr_obj: nr_view}

            # Audible counts and full descending-RSRP orders for the whole
            # block in one pass each: neighbour ranking and bootstrap then
            # walk small python lists instead of calling numpy per tick.
            # (Inaudible cells sink to -inf, so each order row's first
            # `naud` entries are exactly the audible cells, strongest
            # first — distinct floats make the order unambiguous.)
            lte_naud = lte_view.mask_block.sum(axis=1).tolist()
            nr_naud = nr_view.mask_block.sum(axis=1).tolist()
            lte_order = np.argsort(
                np.where(lte_view.mask_block, -lte_view.rsrp_block, np.inf), axis=1
            ).tolist()
            nr_order = np.argsort(
                np.where(nr_view.mask_block, -nr_view.rsrp_block, np.inf), axis=1
            ).tolist()
            scope_cache: dict[tuple, list[bool]] = {}

            for t in range(end - index):
                sample = traj_samples[index + t]
                time_s = sample.time_s
                segment = self._deployment.segment_at(
                    sample.arc_m % route_len if route_len > 0 else sample.arc_m
                )
                self._refresh_segment(segment)
                row["rsrp"], row["rsrq"], row["sinr"] = (
                    sm_rsrp[t], sm_rsrq[t], sm_sinr[t],
                )
                lte_view.tick = t
                nr_view.tick = t
                nr_any = nr_naud[t] > 0

                # --- bootstrap (strongest audible cell, like max() over
                # the insertion-ordered dict in the scalar path) ---
                if self._standalone:
                    if self._ue.nr_serving is None and nr_any:
                        self._ue.nr_serving = nr_cells[nr_order[t][0]]
                        self._nr_attach = None
                        if self._monitor:
                            self._monitor.reset()
                elif self._ue.lte_serving is None and lte_naud[t] > 0:
                    self._ue.lte_serving = lte_cells[lte_order[t][0]]
                    if self._monitor:
                        self._monitor.reset()

                lte_serving = self._ue.lte_serving
                nr_serving = self._ue.nr_serving
                lte_sp = lte_view.pos_of.get(lte_serving) if lte_serving else None
                nr_sp = nr_view.pos_of.get(nr_serving) if nr_serving else None
                lte_view.serving_cell, lte_view.serving_pos = lte_serving, lte_sp
                nr_view.serving_cell, nr_view.serving_pos = nr_serving, nr_sp

                lte_serving_raw = None
                if lte_sp is not None and lte_view.mask_rows[t][lte_sp]:
                    gp = lte_pos_l[lte_sp]
                    lte_serving_raw = RRSSample(
                        rsrp_dbm=raw_rsrp[t][gp],
                        rsrq_db=raw_rsrq[t][gp],
                        sinr_db=raw_sinr[t][gp],
                    )
                nr_serving_raw = None
                if nr_sp is not None and nr_view.mask_rows[t][nr_sp]:
                    gp = nr_pos_l[nr_sp]
                    nr_serving_raw = RRSSample(
                        rsrp_dbm=raw_rsrp[t][gp],
                        rsrq_db=raw_rsrq[t][gp],
                        sinr_db=raw_sinr[t][gp],
                    )

                # --- event monitoring ---
                new_reports: list[MeasurementReport] = []
                if self._monitor is not None and (
                    lte_serving is not None or nr_serving is not None or nr_any
                ):
                    new_reports = self._monitor.observe_arrays(time_s, views)
                    self._log_reports(reports_log, new_reports, time_s)

                # --- handover progression / decision ---
                self._progress_handovers(time_s, new_reports, handovers)
                if self._report_buffer and segment is not None:
                    # sorted() restores ascending cell position — the
                    # insertion order the scalar path's dicts have.
                    nr_samples = {
                        nr_cells[j]: _smoothed_at(nr_pos_l[j])
                        for j in sorted(nr_order[t][: nr_naud[t]])
                    }
                    self._maybe_decide(
                        time_s, sample.arc_m, self._report_buffer, nr_samples, segment
                    )

                # --- capacity and logging (raw samples drive the PHY) ---
                lte_neigh = _top_from_order(
                    lte_cells, lte_order[t], lte_naud[t], self._ue.lte_serving,
                    lte_view, scope_cache, top_k,
                )
                nr_neigh = _top_from_order(
                    nr_cells, nr_order[t], nr_naud[t], self._ue.nr_serving,
                    nr_view, scope_cache, top_k,
                )
                ticks.append(
                    self._tick_record(
                        sample, lte_serving_raw, nr_serving_raw,
                        lte_neigh, nr_neigh, time_s,
                    )
                )
            index = end
        return self._finish(ticks, reports_log, handovers)

    def _log_reports(
        self,
        reports_log: list[ReportRecord],
        new_reports: list[MeasurementReport],
        time_s: float,
    ) -> None:
        for report in new_reports:
            reports_log.append(
                ReportRecord(
                    time_s=time_s,
                    label=report.label,
                    serving_gci=(
                        report.serving_cell.gci
                        if isinstance(report.serving_cell, Cell)
                        else None
                    ),
                    neighbour_gci=(
                        report.neighbour_cell.gci
                        if isinstance(report.neighbour_cell, Cell)
                        else None
                    ),
                    serving_rrs=report.serving_sample,
                    neighbour_rrs=report.neighbour_sample,
                )
            )

    def _progress_handovers(
        self,
        time_s: float,
        new_reports: list[MeasurementReport],
        handovers: list[HandoverRecord],
    ) -> None:
        self._phase_report_count += len(new_reports)
        self._report_buffer.extend(new_reports)
        buffer = self._report_buffer
        while buffer and time_s - buffer[0].time_s > 3.0:
            buffer.popleft()
        for slot in ("master", "scg"):
            record = self._advance_pending(slot, time_s)
            if record is not None:
                handovers.append(record)
        if self._extra_records:
            handovers.extend(self._extra_records)
            self._extra_records = []

    # ------------------------------------------------------------------

    def _measured_set(self) -> list[Cell]:
        """Audible cells plus the serving cells, with cached positions.

        Serving cells must stay measured even when they fall out of the
        refreshed audible set (so A2/RLF logic sees them fade). The set
        is fixed between audible refreshes — handover targets always come
        from the measured set, so a mid-window serving change never
        introduces an unmeasured serving cell — which is what lets the
        vector path measure a whole refresh window in one block.
        """
        key = self._audible_gen
        if key != self._measured_key:
            measured = list(self._audible)
            for serving in self._ue.serving_cells:
                if serving not in measured:
                    self._env.register(serving, serving.band, serving.eirp_dbm)
                    measured.append(serving)
            self._measured_cells = measured
            count = len(measured)
            self._measured_x = np.fromiter(
                (c.position.x for c in measured), dtype=float, count=count
            )
            self._measured_y = np.fromiter(
                (c.position.y for c in measured), dtype=float, count=count
            )
            self._measured_key = key
        return self._measured_cells

    def _refresh_segment(self, segment: SegmentConfig | None) -> None:
        if segment is None:
            return
        band_class = segment.nr_band_class
        if self._monitor is None or band_class != self._monitor_band:
            self._monitor = EventMonitor(
                self._carrier.event_configs(band_class, standalone=self._standalone)
            )
            self._monitor_band = band_class
        self._current_segment = segment

    def _bootstrap_attachment(
        self,
        lte_samples: dict[Cell, RRSSample],
        nr_samples: dict[Cell, RRSSample],
    ) -> None:
        if self._standalone:
            if self._ue.nr_serving is None and nr_samples:
                self._ue.nr_serving = max(nr_samples, key=lambda c: nr_samples[c].rsrp_dbm)
                self._nr_attach = None
                if self._monitor:
                    self._monitor.reset()
        else:
            if self._ue.lte_serving is None and lte_samples:
                self._ue.lte_serving = max(lte_samples, key=lambda c: lte_samples[c].rsrp_dbm)
                if self._monitor:
                    self._monitor.reset()

    def _maybe_decide(
        self,
        time_s: float,
        arc_m: float,
        reports: list[MeasurementReport],
        nr_samples: dict[Cell, RRSSample],
        segment: SegmentConfig,
    ) -> None:
        state = AttachmentState(
            lte_serving=self._ue.lte_serving,
            nr_serving=self._ue.nr_serving,
            standalone=self._standalone,
        )
        band_class = segment.nr_band_class or BandClass.LOW
        b1_threshold = self._carrier.nr_thresholds[band_class].b1_dbm
        nr_neighbours = {
            c: s for c, s in nr_samples.items() if c is not self._ue.nr_serving
        }
        decisions = self._policy.decide_all(state, reports, nr_neighbours, b1_threshold)
        scheduled = False
        for decision in decisions:
            slot = _slot_of(decision.ho_type)
            if slot == "master":
                if self._pending_master is not None or time_s < self._cooldown_master_s:
                    continue
            else:
                if self._pending_scg is not None or time_s < self._cooldown_scg_s:
                    continue
            ho_type = decision.ho_type
            band = self._involved_band_class(decision)
            colocated = self._colocated_for(decision)
            nsa_attached = self._ue.nsa_attached
            execution = self._timing.sample(
                ho_type,
                standalone=self._standalone,
                nsa_attached=nsa_attached and ho_type is HandoverType.LTEH,
                band_class=band,
                colocated=colocated,
            )
            pending = _PendingHandover(
                decision=decision,
                execution=execution,
                decision_time_s=time_s,
                exec_start_s=time_s + execution.t1_ms / 1000.0,
                complete_s=time_s + execution.total_ms / 1000.0,
                mode_before=self._ue.mode,
                source=self._source_cell(decision),
                colocated=colocated,
                same_pci=self._ue.same_pci_legs(),
                arc_m=arc_m,
                reports_consumed=max(self._phase_report_count, 1),
            )
            if slot == "master":
                self._pending_master = pending
            else:
                self._pending_scg = pending
            scheduled = True
        if scheduled:
            # The consumed reports form a completed phase; later reports
            # start the next one.
            self._report_buffer.clear()
            self._phase_report_count = 0

    def _involved_band_class(self, decision: HandoverDecision) -> BandClass | None:
        if decision.ho_type in (HandoverType.LTEH, HandoverType.MNBH):
            # Band class of the NR leg affected, if any.
            return self._ue.nr_band_class
        if decision.target is not None:
            return decision.target.band_class
        if self._ue.nr_serving is not None:
            return self._ue.nr_serving.band_class
        return None

    def _colocated_for(self, decision: HandoverDecision) -> bool:
        """Whether the eNB/gNB pair involved in this HO shares a tower."""
        if self._standalone:
            return True
        lte = self._ue.lte_serving
        if lte is None:
            return True
        if decision.ho_type in (HandoverType.LTEH, HandoverType.MNBH):
            gnb_cell = self._ue.nr_serving
        else:
            gnb_cell = decision.target or self._ue.nr_serving
        if gnb_cell is None:
            return True
        return gnb_cell.tower_id == lte.tower_id

    def _source_cell(self, decision: HandoverDecision) -> Cell | None:
        if decision.ho_type in (HandoverType.LTEH, HandoverType.MNBH):
            return self._ue.lte_serving
        return self._ue.nr_serving

    def _advance_pending(self, slot: str, time_s: float) -> HandoverRecord | None:
        pending = self._pending_master if slot == "master" else self._pending_scg
        if pending is None or time_s < pending.complete_s:
            return None
        # Apply the handover.
        decision = pending.decision
        ho_type = decision.ho_type
        target = decision.target
        coupled_scgr: Cell | None = None
        if ho_type in (HandoverType.LTEH, HandoverType.MNBH):
            self._ue.lte_serving = target
            if decision.releases_scg and self._ue.nr_serving is not None:
                # The anchor change tears the SCG down — a real SCG
                # Release procedure on the RRC layer (§6.1: "an NSA-4C HO
                # always triggers SCGR"), logged as its own record.
                coupled_scgr = self._ue.nr_serving
                self._ue.nr_serving = None
                self._nr_attach = None
        elif ho_type is HandoverType.SCGA:
            self._ue.nr_serving = target
            self._nr_attach = _NrAttachInfo(time_s, cross_gnb=False)
        elif ho_type is HandoverType.SCGR:
            self._ue.nr_serving = None
            self._nr_attach = None
        elif ho_type is HandoverType.SCGC:
            self._ue.nr_serving = target
            self._nr_attach = _NrAttachInfo(time_s, cross_gnb=True)
        elif ho_type is HandoverType.SCGM:
            self._ue.nr_serving = target
            self._nr_attach = _NrAttachInfo(time_s, cross_gnb=False)
        elif ho_type is HandoverType.MCGH:
            self._ue.nr_serving = target
            self._nr_attach = _NrAttachInfo(time_s, cross_gnb=False)
        if self._monitor is not None:
            # Master-node handovers reconfigure the whole measurement
            # setup; SCG procedures only touch the NR object (the eNB's
            # LTE trigger state must survive them).
            if slot == "master":
                self._monitor.reset()
            else:
                self._monitor.reset_event(MeasurementObject.NR)
        if slot == "master" and decision.releases_scg and self._pending_scg is not None:
            # The gNB this SCG procedure targeted is being dropped along
            # with the anchor; the procedure is abandoned.
            self._pending_scg = None

        signaling = self._signaling.for_handover(
            ho_type,
            reports_observed=pending.reports_consumed,
            band_class=self._band_class_or_none(pending),
        )
        energy = self._energy.for_handover(
            ho_type,
            pending.mode_before,
            self._band_class_or_none(pending),
            signaling,
        )
        record = HandoverRecord(
            ho_type=ho_type,
            decision_time_s=pending.decision_time_s,
            exec_start_s=pending.exec_start_s,
            complete_s=pending.complete_s,
            t1_ms=pending.execution.t1_ms,
            t2_ms=pending.execution.t2_ms,
            mode_before=pending.mode_before,
            mode_after=self._ue.mode,
            source_gci=pending.source.gci if pending.source else None,
            target_gci=target.gci if target else None,
            source_pci=pending.source.pci if pending.source else None,
            target_pci=target.pci if target else None,
            band_class=pending.execution.band_class,
            arc_m=pending.arc_m,
            colocated=pending.colocated,
            same_pci_legs=pending.same_pci,
            trigger_labels=tuple(r.label for r in decision.triggering_reports),
            signaling=signaling,
            energy_j=energy.energy_j,
        )
        if slot == "master":
            self._pending_master = None
            self._cooldown_master_s = time_s + self._config.ho_cooldown_s
        else:
            self._pending_scg = None
            self._cooldown_scg_s = time_s + self._config.ho_cooldown_s
        if coupled_scgr is not None:
            self._extra_records.append(
                self._coupled_scgr_record(record, coupled_scgr)
            )
        return record

    def _band_class_or_none(self, pending: _PendingHandover) -> BandClass | None:
        return pending.execution.band_class

    def _coupled_scgr_record(
        self, anchor: HandoverRecord, released: Cell
    ) -> HandoverRecord:
        """The SCG Release executed as part of an anchor handover."""
        execution = self._timing.sample(
            HandoverType.SCGR,
            band_class=released.band_class,
            colocated=anchor.colocated,
        )
        signaling = self._signaling.for_handover(
            HandoverType.SCGR, reports_observed=1, band_class=released.band_class
        )
        energy = self._energy.for_handover(
            HandoverType.SCGR, anchor.mode_before, released.band_class, signaling
        )
        return HandoverRecord(
            ho_type=HandoverType.SCGR,
            decision_time_s=anchor.decision_time_s,
            exec_start_s=anchor.exec_start_s,
            complete_s=anchor.exec_start_s + execution.t2_ms / 1000.0,
            t1_ms=execution.t1_ms,
            t2_ms=execution.t2_ms,
            mode_before=anchor.mode_before,
            mode_after=self._ue.mode,
            source_gci=released.gci,
            target_gci=None,
            source_pci=released.pci,
            target_pci=None,
            band_class=released.band_class,
            arc_m=anchor.arc_m,
            colocated=anchor.colocated,
            same_pci_legs=anchor.same_pci_legs,
            trigger_labels=anchor.trigger_labels,
            signaling=signaling,
            energy_j=energy.energy_j,
        )

    # ------------------------------------------------------------------

    def _interruptions(self, time_s: float) -> tuple[bool, bool]:
        """(lte_interrupted, nr_interrupted) at this instant."""
        lte_int = nr_int = False
        for pending in (self._pending_master, self._pending_scg):
            if pending is None or not pending.exec_start_s <= time_s < pending.complete_s:
                continue
            ho_type = pending.decision.ho_type
            lte_int = lte_int or ho_type.interrupts_lte_data
            nr_int = nr_int or ho_type.interrupts_nr_data
        return (lte_int, nr_int)

    def _tick_record(
        self,
        sample,
        lte_serving_sample: RRSSample | None,
        nr_serving_sample: RRSSample | None,
        lte_neigh: tuple[NeighbourObservation, ...],
        nr_neigh: tuple[NeighbourObservation, ...],
        time_s: float,
    ) -> TickRecord:
        lte_serving = self._ue.lte_serving
        nr_serving = self._ue.nr_serving
        lte_int, nr_int = self._interruptions(time_s)

        lte_cap = 0.0
        if lte_serving is not None and lte_serving_sample is not None and not lte_int:
            lte_cap = self._capacity.capacity_mbps(
                lte_serving.band, lte_serving_sample.sinr_db
            )
        nr_cap = 0.0
        if nr_serving is not None and nr_serving_sample is not None and not nr_int:
            attach = self._nr_attach
            nr_cap = self._capacity.leg_capacity(
                nr_serving.band,
                nr_serving_sample,
                time_since_attach_s=(time_s - attach.time_s) if attach else None,
                cross_gnb_attach=attach.cross_gnb if attach else False,
            ).capacity_mbps

        total = self._total_capacity(lte_cap, nr_cap, lte_int)

        return TickRecord(
            time_s=time_s,
            arc_m=sample.arc_m,
            x_m=sample.position.x,
            y_m=sample.position.y,
            speed_mps=sample.speed_mps,
            mode=self._ue.mode,
            lte_serving_gci=lte_serving.gci if lte_serving else None,
            lte_serving_pci=lte_serving.pci if lte_serving else None,
            nr_serving_gci=nr_serving.gci if nr_serving else None,
            nr_serving_pci=nr_serving.pci if nr_serving else None,
            nr_band_class=nr_serving.band_class if nr_serving else None,
            lte_rrs=lte_serving_sample,
            nr_rrs=nr_serving_sample,
            lte_neighbours=lte_neigh,
            nr_neighbours=nr_neigh,
            lte_capacity_mbps=lte_cap,
            nr_capacity_mbps=nr_cap,
            total_capacity_mbps=total,
            lte_interrupted=lte_int,
            nr_interrupted=nr_int,
        )

    def _total_capacity(self, lte_cap: float, nr_cap: float, lte_int: bool) -> float:
        if self._standalone:
            return nr_cap
        bearer = self._config.bearer
        if self._ue.nr_serving is None:
            # No SCG: all traffic on LTE regardless of bearer config.
            return lte_cap
        if bearer is BearerMode.FIVE_G_ONLY:
            return nr_cap
        return lte_cap + nr_cap


def _select_top(cells: list[Cell], rsrp: np.ndarray, serving: Cell | None, k: int):
    """Pick the reported neighbour indices out of candidate ``cells``.

    Returns (indices into ``cells`` strongest-first, in_scope predicate).
    """
    count = len(cells)
    serving_node = serving.node_id if serving is not None else None
    serving_band = serving.band.name if serving is not None else None

    def in_scope(cell: Cell) -> bool:
        # NR A3 is scoped to the serving gNB's cells; LTE A3 to the
        # serving frequency. Both mirror what the network configures.
        if serving is None:
            return False
        if cell.rat is RadioAccessTechnology.NR:
            return cell.node_id == serving_node
        return cell.band.name == serving_band

    # Partial selection: only the top k (plus any reserved in-scope
    # extras) ever need ordering, so argpartition replaces the full sort.
    if count > k > 0:
        part = np.argpartition(-rsrp, k - 1)
        top = part[:k]
        rest = part[k:]
    else:
        top = np.arange(min(count, max(k, 0)))
        rest = np.arange(min(count, max(k, 0)), count)
    top = top[np.argsort(-rsrp[top])]
    chosen = top.tolist()

    # The UE reports the strongest cells overall, but the configured
    # measurement objects guarantee the serving node's own cells (the A3
    # candidates) are always measured — reserve up to two slots for them.
    in_scope_chosen = sum(1 for i in chosen if in_scope(cells[i]))
    if in_scope_chosen < 2:
        extra_idx = [i for i in rest.tolist() if in_scope(cells[i])]
        extra_idx.sort(key=lambda i: -rsrp[i])
        for i in extra_idx[: 2 - in_scope_chosen]:
            # Replace the weakest out-of-scope entry.
            for j in range(len(chosen) - 1, -1, -1):
                if not in_scope(cells[chosen[j]]):
                    chosen[j] = i
                    break
            else:
                chosen.append(i)
    chosen.sort(key=lambda i: -rsrp[i])
    return chosen, in_scope


def _top_neighbours(
    samples: dict[Cell, RRSSample], serving: Cell | None, k: int
) -> tuple[NeighbourObservation, ...]:
    cells = [c for c in samples if c is not serving]
    count = len(cells)
    if count == 0:
        return ()
    rsrp = np.fromiter((samples[c].rsrp_dbm for c in cells), dtype=float, count=count)
    chosen, in_scope = _select_top(cells, rsrp, serving, k)
    return tuple(
        NeighbourObservation(
            gci=cells[i].gci,
            pci=cells[i].pci,
            rrs=samples[cells[i]],
            in_a3_scope=in_scope(cells[i]),
        )
        for i in chosen
    )


def _top_from_order(
    cells: list[Cell],
    order_row: list[int],
    naud: int,
    serving: Cell | None,
    view: ObjectView,
    scope_cache: dict[tuple, list[bool]],
    k: int,
) -> tuple[NeighbourObservation, ...]:
    """Order-walk `_top_neighbours`: ``order_row[:naud]`` holds the audible
    positions of one measurement object strongest-first, so top-k selection
    and the in-scope reserve become short list walks. Matches `_select_top`
    exactly because RSRP draws are distinct floats: the first k entries are
    the argpartition top-k already in descending order, and filtering the
    descending candidate list by membership reproduces the final sort.
    """
    if naud == 0:
        return ()
    spos = view.pos_of.get(serving) if serving is not None else None
    cand = [p for p in order_row[:naud] if p != spos]
    if not cand:
        return ()
    key = (id(cells), serving)
    flags = scope_cache.get(key)
    if flags is None:
        if serving is None:
            flags = [False] * len(cells)
        else:
            # NR A3 is scoped to the serving gNB's cells; LTE A3 to the
            # serving frequency. Both mirror what the network configures.
            node = serving.node_id
            band = serving.band.name
            flags = [
                (c.node_id == node)
                if c.rat is RadioAccessTechnology.NR
                else (c.band.name == band)
                for c in cells
            ]
        scope_cache[key] = flags
    chosen = cand[: max(k, 0)]
    in_scope_chosen = sum(1 for p in chosen if flags[p])
    if in_scope_chosen < 2:
        extras = [p for p in cand[len(chosen) :] if flags[p]]
        for p in extras[: 2 - in_scope_chosen]:
            # Replace the weakest out-of-scope entry.
            for j in range(len(chosen) - 1, -1, -1):
                if not flags[chosen[j]]:
                    chosen[j] = p
                    break
            else:
                chosen.append(p)
    chosen_set = set(chosen)
    t = view.tick
    rs, rq, si = view.rsrp_rows[t], view.rsrq_rows[t], view.sinr_rows[t]
    return tuple(
        [
            NeighbourObservation(
                gci=cells[p].gci,
                pci=cells[p].pci,
                rrs=RRSSample(rsrp_dbm=rs[p], rsrq_db=rq[p], sinr_db=si[p]),
                in_a3_scope=flags[p],
            )
            for p in cand
            if p in chosen_set
        ]
    )
