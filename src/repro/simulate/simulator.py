"""The drive-test simulator.

Walks a UE along a trajectory through a deployment at the logging rate,
running per tick:

1. radio measurement of every audible cell (RRS synthesis),
2. the UE-side event monitor (Table 4 events with TTT),
3. the carrier's handover policy over fresh measurement reports,
4. handover execution with T1/T2 staging, data-plane interruption,
   signaling accounting and energy attribution,
5. per-leg capacity under the configured NSA bearer mode.

The output :class:`DriveLog` is the in-silico equivalent of the paper's
XCAL + 5G Tracker capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mobility.trajectory import Trajectory
from repro.net.bearer import BearerMode
from repro.net.capacity import CapacityModel
from repro.radio.bands import BandClass, RadioAccessTechnology
from repro.radio.rrs import RadioEnvironment, RRSSample
from repro.ran.cells import Cell
from repro.ran.deployment import Deployment, SegmentConfig
from repro.rrc.events import MeasurementObject
from repro.rrc.handover import HandoverExecution, HandoverTimingModel
from repro.rrc.measurement import EventMonitor, L3Filter, MeasurementReport
from repro.rrc.policy import AttachmentState, HandoverDecision, HandoverPolicy
from repro.rrc.signaling import SignalingModel
from repro.rrc.taxonomy import HandoverType
from repro.simulate.records import (
    DriveLog,
    HandoverRecord,
    NeighbourObservation,
    ReportRecord,
    TickRecord,
)
from repro.ue.energy import EnergyModel
from repro.ue.state import RadioMode, UEState


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Knobs of one simulation run."""

    bearer: BearerMode = BearerMode.DUAL
    neighbour_top_k: int = 3
    #: Re-scan the audible cell set every this many ticks.
    audible_refresh_ticks: int = 20
    #: Probability an anchor HO keeps the SCG alive (MNBH) vs. tearing it
    #: down (§6.1 observes carriers where this is ~0 on low-band).
    anchor_keeps_scg_probability: float = 0.3
    #: Co-channel interference load factor (None = per-band defaults).
    interference_load: float | None = None
    #: L3 filter coefficient applied before event evaluation.
    l3_filter_alpha: float = 0.16
    #: Handover prohibit timer: after a procedure completes, the network
    #: holds off further decisions this long (ping-pong damping; 3GPP
    #: T304-style prohibit behaviour carriers deploy in practice).
    ho_cooldown_s: float = 1.0
    #: Shadowing sigma multiplier (open rural terrain shadows less than
    #: the suburban defaults).
    shadow_sigma_scale: float = 1.0
    #: §6.2's proposed carrier fix: SCG Change picks the strongest
    #: qualifying target instead of the first one (ablation knob).
    quality_aware_scgc: bool = False
    scenario_name: str = ""


_MASTER_TYPES = (HandoverType.LTEH, HandoverType.MNBH, HandoverType.MCGH)


def _slot_of(ho_type: HandoverType) -> str:
    """Which node executes the procedure: the master or the secondary."""
    return "master" if ho_type in _MASTER_TYPES else "scg"


@dataclass(slots=True)
class _PendingHandover:
    decision: HandoverDecision
    execution: HandoverExecution
    decision_time_s: float
    exec_start_s: float
    complete_s: float
    mode_before: RadioMode
    source: Cell | None
    colocated: bool
    same_pci: bool | None
    arc_m: float
    reports_consumed: int


@dataclass(slots=True)
class _NrAttachInfo:
    time_s: float
    cross_gnb: bool


class DriveSimulator:
    """Simulates one drive of one UE on one carrier."""

    def __init__(
        self,
        deployment: Deployment,
        trajectory: Trajectory,
        rng: np.random.Generator,
        config: SimulationConfig | None = None,
    ):
        self._deployment = deployment
        self._trajectory = trajectory
        self._rng = rng
        self._config = config or SimulationConfig()
        self._carrier = deployment.carrier
        tick = trajectory.tick_interval_s or 0.05
        self._env = RadioEnvironment(
            rng,
            interference_load=self._config.interference_load,
            speed_mps=max(trajectory.mean_speed_mps, 1.0),
            sample_interval_s=tick,
            urban=any(s.urban for s in deployment.segments),
            shadow_sigma_scale=self._config.shadow_sigma_scale,
        )
        self._policy = HandoverPolicy(
            rng,
            anchor_keeps_scg_probability=self._config.anchor_keeps_scg_probability,
            quality_aware_scgc=self._config.quality_aware_scgc,
        )
        self._timing = HandoverTimingModel(
            rng, t1_scale=self._carrier.t1_scale, t2_scale=self._carrier.t2_scale
        )
        self._signaling = SignalingModel(rng)
        self._energy = EnergyModel(rng)
        self._capacity = CapacityModel()

        first_segment = deployment.segments[0]
        self._standalone = first_segment.standalone
        if any(s.standalone != self._standalone for s in deployment.segments):
            raise ValueError(
                "mixed SA/NSA segments in one run are not supported; "
                "simulate them as separate drives"
            )
        self._ue = UEState(standalone=self._standalone)
        self._l3 = L3Filter(alpha=self._config.l3_filter_alpha)
        self._monitor: EventMonitor | None = None
        self._monitor_band: BandClass | None = None
        # The master node (eNB / SA gNB) and the secondary node execute
        # procedures independently — one pending slot and cooldown each.
        self._pending_master: _PendingHandover | None = None
        self._pending_scg: _PendingHandover | None = None
        self._cooldown_master_s = float("-inf")
        self._cooldown_scg_s = float("-inf")
        #: Reports not yet consumed by a decision — the current "phase".
        #: Entries expire after a few seconds (stale radio state).
        self._report_buffer: list[MeasurementReport] = []
        #: All reports sent since the last decision (signaling accounting
        #: — unlike the buffer, these never expire within a phase).
        self._phase_report_count = 0
        self._nr_attach: _NrAttachInfo | None = None
        self._audible: list[Cell] = []
        self._current_segment: SegmentConfig | None = None
        #: Records synthesised alongside a primary one (coupled SCGR).
        self._extra_records: list[HandoverRecord] = []

    # ------------------------------------------------------------------

    def run(self) -> DriveLog:
        """Execute the drive and return the full log."""
        ticks: list[TickRecord] = []
        reports_log: list[ReportRecord] = []
        handovers: list[HandoverRecord] = []

        for index, sample in enumerate(self._trajectory):
            time_s = sample.time_s
            segment = self._deployment.segment_at(
                sample.arc_m % self._trajectory.route.length
                if self._trajectory.route.length > 0
                else sample.arc_m
            )
            self._refresh_segment(segment)
            if index % self._config.audible_refresh_ticks == 0 or not self._audible:
                self._audible = self._deployment.audible_cells(sample.position)
                for cell in self._audible:
                    self._env.register(cell, cell.band, cell.eirp_dbm)
            # Serving cells must stay measured even when they fall out of
            # the refreshed audible set (so A2/RLF logic sees them fade).
            measured = list(self._audible)
            for serving in self._ue.serving_cells:
                if serving not in measured:
                    self._env.register(serving, serving.band, serving.eirp_dbm)
                    measured.append(serving)

            distances = {cell: cell.distance_to(sample.position) for cell in measured}
            raw_samples = self._env.measure(distances, sample.arc_m)
            # The UE evaluates events on L3-filtered measurements; the
            # raw per-tick samples still drive capacity and the logs.
            samples = self._l3.update(time_s, raw_samples)

            lte_samples = {
                c: s for c, s in samples.items() if c.rat is RadioAccessTechnology.LTE
            }
            nr_samples = {
                c: s for c, s in samples.items() if c.rat is RadioAccessTechnology.NR
            }
            self._bootstrap_attachment(lte_samples, nr_samples)

            lte_serving = self._ue.lte_serving
            nr_serving = self._ue.nr_serving
            lte_serving_sample = lte_samples.get(lte_serving) if lte_serving else None
            nr_serving_sample = nr_samples.get(nr_serving) if nr_serving else None
            lte_serving_raw = raw_samples.get(lte_serving) if lte_serving else None
            nr_serving_raw = raw_samples.get(nr_serving) if nr_serving else None

            # --- event monitoring ---
            new_reports: list[MeasurementReport] = []
            if self._monitor is not None and (lte_serving or nr_serving or nr_samples):
                serving_map = {
                    MeasurementObject.LTE: (
                        (lte_serving, lte_serving_sample)
                        if lte_serving is not None and lte_serving_sample is not None
                        else None
                    ),
                    MeasurementObject.NR: (
                        (nr_serving, nr_serving_sample)
                        if nr_serving is not None and nr_serving_sample is not None
                        else None
                    ),
                }
                neighbour_map = {
                    MeasurementObject.LTE: {
                        c: s for c, s in lte_samples.items() if c is not lte_serving
                    },
                    MeasurementObject.NR: {
                        c: s for c, s in nr_samples.items() if c is not nr_serving
                    },
                }
                new_reports = self._monitor.observe(time_s, serving_map, neighbour_map)
                for report in new_reports:
                    reports_log.append(
                        ReportRecord(
                            time_s=time_s,
                            label=report.label,
                            serving_gci=(
                                report.serving_cell.gci
                                if isinstance(report.serving_cell, Cell)
                                else None
                            ),
                            neighbour_gci=(
                                report.neighbour_cell.gci
                                if isinstance(report.neighbour_cell, Cell)
                                else None
                            ),
                            serving_rrs=report.serving_sample,
                            neighbour_rrs=report.neighbour_sample,
                        )
                    )

            # --- handover progression / decision ---
            self._phase_report_count += len(new_reports)
            self._report_buffer.extend(new_reports)
            self._report_buffer = [
                r for r in self._report_buffer if time_s - r.time_s <= 3.0
            ]
            for slot in ("master", "scg"):
                record = self._advance_pending(slot, time_s)
                if record is not None:
                    handovers.append(record)
            if self._extra_records:
                handovers.extend(self._extra_records)
                self._extra_records = []
            if self._report_buffer and segment is not None:
                self._maybe_decide(
                    time_s, sample.arc_m, self._report_buffer, nr_samples, segment
                )

            # --- capacity and logging (raw samples drive the PHY) ---
            ticks.append(
                self._tick_record(
                    sample, lte_serving_raw, nr_serving_raw, lte_samples, nr_samples, time_s
                )
            )
        return DriveLog(
            self._carrier.name,
            None if self._standalone else self._config.bearer,
            ticks,
            reports_log,
            handovers,
            scenario=self._config.scenario_name,
        )

    # ------------------------------------------------------------------

    def _refresh_segment(self, segment: SegmentConfig | None) -> None:
        if segment is None:
            return
        band_class = segment.nr_band_class
        if self._monitor is None or band_class != self._monitor_band:
            self._monitor = EventMonitor(
                self._carrier.event_configs(band_class, standalone=self._standalone)
            )
            self._monitor_band = band_class
        self._current_segment = segment

    def _bootstrap_attachment(
        self,
        lte_samples: dict[Cell, RRSSample],
        nr_samples: dict[Cell, RRSSample],
    ) -> None:
        if self._standalone:
            if self._ue.nr_serving is None and nr_samples:
                self._ue.nr_serving = max(nr_samples, key=lambda c: nr_samples[c].rsrp_dbm)
                self._nr_attach = None
                if self._monitor:
                    self._monitor.reset()
        else:
            if self._ue.lte_serving is None and lte_samples:
                self._ue.lte_serving = max(lte_samples, key=lambda c: lte_samples[c].rsrp_dbm)
                if self._monitor:
                    self._monitor.reset()

    def _maybe_decide(
        self,
        time_s: float,
        arc_m: float,
        reports: list[MeasurementReport],
        nr_samples: dict[Cell, RRSSample],
        segment: SegmentConfig,
    ) -> None:
        state = AttachmentState(
            lte_serving=self._ue.lte_serving,
            nr_serving=self._ue.nr_serving,
            standalone=self._standalone,
        )
        band_class = segment.nr_band_class or BandClass.LOW
        b1_threshold = self._carrier.nr_thresholds[band_class].b1_dbm
        nr_neighbours = {
            c: s for c, s in nr_samples.items() if c is not self._ue.nr_serving
        }
        decisions = self._policy.decide_all(state, reports, nr_neighbours, b1_threshold)
        scheduled = False
        for decision in decisions:
            slot = _slot_of(decision.ho_type)
            if slot == "master":
                if self._pending_master is not None or time_s < self._cooldown_master_s:
                    continue
            else:
                if self._pending_scg is not None or time_s < self._cooldown_scg_s:
                    continue
            ho_type = decision.ho_type
            band = self._involved_band_class(decision)
            colocated = self._colocated_for(decision)
            nsa_attached = self._ue.nsa_attached
            execution = self._timing.sample(
                ho_type,
                standalone=self._standalone,
                nsa_attached=nsa_attached and ho_type is HandoverType.LTEH,
                band_class=band,
                colocated=colocated,
            )
            pending = _PendingHandover(
                decision=decision,
                execution=execution,
                decision_time_s=time_s,
                exec_start_s=time_s + execution.t1_ms / 1000.0,
                complete_s=time_s + execution.total_ms / 1000.0,
                mode_before=self._ue.mode,
                source=self._source_cell(decision),
                colocated=colocated,
                same_pci=self._ue.same_pci_legs(),
                arc_m=arc_m,
                reports_consumed=max(self._phase_report_count, 1),
            )
            if slot == "master":
                self._pending_master = pending
            else:
                self._pending_scg = pending
            scheduled = True
        if scheduled:
            # The consumed reports form a completed phase; later reports
            # start the next one.
            self._report_buffer = []
            self._phase_report_count = 0

    def _involved_band_class(self, decision: HandoverDecision) -> BandClass | None:
        if decision.ho_type in (HandoverType.LTEH, HandoverType.MNBH):
            # Band class of the NR leg affected, if any.
            return self._ue.nr_band_class
        if decision.target is not None:
            return decision.target.band_class
        if self._ue.nr_serving is not None:
            return self._ue.nr_serving.band_class
        return None

    def _colocated_for(self, decision: HandoverDecision) -> bool:
        """Whether the eNB/gNB pair involved in this HO shares a tower."""
        if self._standalone:
            return True
        lte = self._ue.lte_serving
        if lte is None:
            return True
        if decision.ho_type in (HandoverType.LTEH, HandoverType.MNBH):
            gnb_cell = self._ue.nr_serving
        else:
            gnb_cell = decision.target or self._ue.nr_serving
        if gnb_cell is None:
            return True
        return gnb_cell.tower_id == lte.tower_id

    def _source_cell(self, decision: HandoverDecision) -> Cell | None:
        if decision.ho_type in (HandoverType.LTEH, HandoverType.MNBH):
            return self._ue.lte_serving
        return self._ue.nr_serving

    def _advance_pending(self, slot: str, time_s: float) -> HandoverRecord | None:
        pending = self._pending_master if slot == "master" else self._pending_scg
        if pending is None or time_s < pending.complete_s:
            return None
        # Apply the handover.
        decision = pending.decision
        ho_type = decision.ho_type
        target = decision.target
        coupled_scgr: Cell | None = None
        if ho_type in (HandoverType.LTEH, HandoverType.MNBH):
            self._ue.lte_serving = target
            if decision.releases_scg and self._ue.nr_serving is not None:
                # The anchor change tears the SCG down — a real SCG
                # Release procedure on the RRC layer (§6.1: "an NSA-4C HO
                # always triggers SCGR"), logged as its own record.
                coupled_scgr = self._ue.nr_serving
                self._ue.nr_serving = None
                self._nr_attach = None
        elif ho_type is HandoverType.SCGA:
            self._ue.nr_serving = target
            self._nr_attach = _NrAttachInfo(time_s, cross_gnb=False)
        elif ho_type is HandoverType.SCGR:
            self._ue.nr_serving = None
            self._nr_attach = None
        elif ho_type is HandoverType.SCGC:
            self._ue.nr_serving = target
            self._nr_attach = _NrAttachInfo(time_s, cross_gnb=True)
        elif ho_type is HandoverType.SCGM:
            self._ue.nr_serving = target
            self._nr_attach = _NrAttachInfo(time_s, cross_gnb=False)
        elif ho_type is HandoverType.MCGH:
            self._ue.nr_serving = target
            self._nr_attach = _NrAttachInfo(time_s, cross_gnb=False)
        if self._monitor is not None:
            # Master-node handovers reconfigure the whole measurement
            # setup; SCG procedures only touch the NR object (the eNB's
            # LTE trigger state must survive them).
            if slot == "master":
                self._monitor.reset()
            else:
                self._monitor.reset_event(MeasurementObject.NR)
        if slot == "master" and decision.releases_scg and self._pending_scg is not None:
            # The gNB this SCG procedure targeted is being dropped along
            # with the anchor; the procedure is abandoned.
            self._pending_scg = None

        signaling = self._signaling.for_handover(
            ho_type,
            reports_observed=pending.reports_consumed,
            band_class=self._band_class_or_none(pending),
        )
        energy = self._energy.for_handover(
            ho_type,
            pending.mode_before,
            self._band_class_or_none(pending),
            signaling,
        )
        record = HandoverRecord(
            ho_type=ho_type,
            decision_time_s=pending.decision_time_s,
            exec_start_s=pending.exec_start_s,
            complete_s=pending.complete_s,
            t1_ms=pending.execution.t1_ms,
            t2_ms=pending.execution.t2_ms,
            mode_before=pending.mode_before,
            mode_after=self._ue.mode,
            source_gci=pending.source.gci if pending.source else None,
            target_gci=target.gci if target else None,
            source_pci=pending.source.pci if pending.source else None,
            target_pci=target.pci if target else None,
            band_class=pending.execution.band_class,
            arc_m=pending.arc_m,
            colocated=pending.colocated,
            same_pci_legs=pending.same_pci,
            trigger_labels=tuple(r.label for r in decision.triggering_reports),
            signaling=signaling,
            energy_j=energy.energy_j,
        )
        if slot == "master":
            self._pending_master = None
            self._cooldown_master_s = time_s + self._config.ho_cooldown_s
        else:
            self._pending_scg = None
            self._cooldown_scg_s = time_s + self._config.ho_cooldown_s
        if coupled_scgr is not None:
            self._extra_records.append(
                self._coupled_scgr_record(record, coupled_scgr)
            )
        return record

    def _band_class_or_none(self, pending: _PendingHandover) -> BandClass | None:
        return pending.execution.band_class

    def _coupled_scgr_record(
        self, anchor: HandoverRecord, released: Cell
    ) -> HandoverRecord:
        """The SCG Release executed as part of an anchor handover."""
        execution = self._timing.sample(
            HandoverType.SCGR,
            band_class=released.band_class,
            colocated=anchor.colocated,
        )
        signaling = self._signaling.for_handover(
            HandoverType.SCGR, reports_observed=1, band_class=released.band_class
        )
        energy = self._energy.for_handover(
            HandoverType.SCGR, anchor.mode_before, released.band_class, signaling
        )
        return HandoverRecord(
            ho_type=HandoverType.SCGR,
            decision_time_s=anchor.decision_time_s,
            exec_start_s=anchor.exec_start_s,
            complete_s=anchor.exec_start_s + execution.t2_ms / 1000.0,
            t1_ms=execution.t1_ms,
            t2_ms=execution.t2_ms,
            mode_before=anchor.mode_before,
            mode_after=self._ue.mode,
            source_gci=released.gci,
            target_gci=None,
            source_pci=released.pci,
            target_pci=None,
            band_class=released.band_class,
            arc_m=anchor.arc_m,
            colocated=anchor.colocated,
            same_pci_legs=anchor.same_pci_legs,
            trigger_labels=anchor.trigger_labels,
            signaling=signaling,
            energy_j=energy.energy_j,
        )

    # ------------------------------------------------------------------

    def _interruptions(self, time_s: float) -> tuple[bool, bool]:
        """(lte_interrupted, nr_interrupted) at this instant."""
        lte_int = nr_int = False
        for pending in (self._pending_master, self._pending_scg):
            if pending is None or not pending.exec_start_s <= time_s < pending.complete_s:
                continue
            ho_type = pending.decision.ho_type
            lte_int = lte_int or ho_type.interrupts_lte_data
            nr_int = nr_int or ho_type.interrupts_nr_data
        return (lte_int, nr_int)

    def _tick_record(
        self,
        sample,
        lte_serving_sample: RRSSample | None,
        nr_serving_sample: RRSSample | None,
        lte_samples: dict[Cell, RRSSample],
        nr_samples: dict[Cell, RRSSample],
        time_s: float,
    ) -> TickRecord:
        lte_serving = self._ue.lte_serving
        nr_serving = self._ue.nr_serving
        lte_int, nr_int = self._interruptions(time_s)

        lte_cap = 0.0
        if lte_serving is not None and lte_serving_sample is not None and not lte_int:
            lte_cap = self._capacity.capacity_mbps(
                lte_serving.band, lte_serving_sample.sinr_db
            )
        nr_cap = 0.0
        if nr_serving is not None and nr_serving_sample is not None and not nr_int:
            attach = self._nr_attach
            nr_cap = self._capacity.leg_capacity(
                nr_serving.band,
                nr_serving_sample,
                time_since_attach_s=(time_s - attach.time_s) if attach else None,
                cross_gnb_attach=attach.cross_gnb if attach else False,
            ).capacity_mbps

        total = self._total_capacity(lte_cap, nr_cap, lte_int)

        top_k = self._config.neighbour_top_k
        lte_neigh = _top_neighbours(lte_samples, lte_serving, top_k)
        nr_neigh = _top_neighbours(nr_samples, nr_serving, top_k)

        return TickRecord(
            time_s=time_s,
            arc_m=sample.arc_m,
            x_m=sample.position.x,
            y_m=sample.position.y,
            speed_mps=sample.speed_mps,
            mode=self._ue.mode,
            lte_serving_gci=lte_serving.gci if lte_serving else None,
            lte_serving_pci=lte_serving.pci if lte_serving else None,
            nr_serving_gci=nr_serving.gci if nr_serving else None,
            nr_serving_pci=nr_serving.pci if nr_serving else None,
            nr_band_class=nr_serving.band_class if nr_serving else None,
            lte_rrs=lte_serving_sample,
            nr_rrs=nr_serving_sample,
            lte_neighbours=lte_neigh,
            nr_neighbours=nr_neigh,
            lte_capacity_mbps=lte_cap,
            nr_capacity_mbps=nr_cap,
            total_capacity_mbps=total,
            lte_interrupted=lte_int,
            nr_interrupted=nr_int,
        )

    def _total_capacity(self, lte_cap: float, nr_cap: float, lte_int: bool) -> float:
        if self._standalone:
            return nr_cap
        bearer = self._config.bearer
        if self._ue.nr_serving is None:
            # No SCG: all traffic on LTE regardless of bearer config.
            return lte_cap
        if bearer is BearerMode.FIVE_G_ONLY:
            return nr_cap
        return lte_cap + nr_cap


def _top_neighbours(
    samples: dict[Cell, RRSSample], serving: Cell | None, k: int
) -> tuple[NeighbourObservation, ...]:
    neighbours = [(c, s) for c, s in samples.items() if c is not serving]
    neighbours.sort(key=lambda item: item[1].rsrp_dbm, reverse=True)
    serving_node = serving.node_id if serving is not None else None
    serving_band = serving.band.name if serving is not None else None

    def in_scope(cell: Cell) -> bool:
        # NR A3 is scoped to the serving gNB's cells; LTE A3 to the
        # serving frequency. Both mirror what the network configures.
        if serving is None:
            return False
        if cell.rat is RadioAccessTechnology.NR:
            return cell.node_id == serving_node
        return cell.band.name == serving_band

    # The UE reports the strongest cells overall, but the configured
    # measurement objects guarantee the serving node's own cells (the A3
    # candidates) are always measured — reserve up to two slots for them.
    chosen = neighbours[:k]
    in_scope_chosen = sum(1 for c, _ in chosen if in_scope(c))
    if in_scope_chosen < 2:
        extras = [item for item in neighbours[k:] if in_scope(item[0])]
        for extra in extras[: 2 - in_scope_chosen]:
            # Replace the weakest out-of-scope entry.
            for i in range(len(chosen) - 1, -1, -1):
                if not in_scope(chosen[i][0]):
                    chosen[i] = extra
                    break
            else:
                chosen.append(extra)
    chosen.sort(key=lambda item: item[1].rsrp_dbm, reverse=True)
    return tuple(
        NeighbourObservation(
            gci=c.gci,
            pci=c.pci,
            rrs=s,
            in_a3_scope=in_scope(c),
        )
        for c, s in chosen
    )
