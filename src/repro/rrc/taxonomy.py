"""Handover taxonomy — the paper's Table 2, encoded.

Each 5G mobility procedure carries three labels: the procedure type
itself, the radio access technology change it implies for the data path,
and whether the paper buckets it as a "4G HO" or a "5G HO" (NSA runs its
control plane on LTE, so several 5G-affecting procedures are actually 4G
handovers).
"""

from __future__ import annotations

import enum


class TechChange(enum.Enum):
    """Access-technology transition of the user-plane (Table 2 column 2)."""

    FOUR_TO_FIVE = "4G->5G"
    FIVE_TO_FOUR = "5G->4G"
    FIVE_TO_FIVE = "5G->5G"
    FIVE_TO_FOUR_TO_FIVE = "5G->4G->5G"
    FOUR_TO_FOUR = "4G->4G"


class HandoverCategory(enum.Enum):
    """Whether the paper counts the procedure as a 4G or a 5G handover."""

    FOUR_G = "4G"
    FIVE_G = "5G"


class HandoverType(enum.Enum):
    """Mobility procedures observed in the study (Table 2).

    ``NONE`` is not a procedure; it is the "no handover" class used by the
    prediction problem (Section 7).
    """

    SCGA = "SCG Addition"
    SCGR = "SCG Release"
    SCGM = "SCG Modification"
    SCGC = "SCG Change"
    MNBH = "MeNB HO"
    MCGH = "MCG HO (SA)"
    LTEH = "LTE HO"
    NONE = "No HO"

    @property
    def acronym(self) -> str:
        return self.name

    @property
    def tech_change(self) -> TechChange:
        return _TECH_CHANGE[self]

    @property
    def category(self) -> HandoverCategory:
        return _CATEGORY[self]

    @property
    def is_scg_procedure(self) -> bool:
        """True for the NSA secondary-cell-group procedures of Fig. 2."""
        return self in (
            HandoverType.SCGA,
            HandoverType.SCGR,
            HandoverType.SCGM,
            HandoverType.SCGC,
        )

    @property
    def touches_nr(self) -> bool:
        """True if the procedure adds/removes/moves a 5G-NR leg."""
        return self is not HandoverType.LTEH and self is not HandoverType.NONE

    @property
    def interrupts_lte_data(self) -> bool:
        """True if the procedure halts the 4G/LTE user plane.

        Per the paper (footnote in Section 5.2): NSA 5G HOs do not affect
        the 4G data plane, but 4G HOs interrupt data activity on both
        radios.
        """
        return self in (HandoverType.MNBH, HandoverType.LTEH)

    @property
    def interrupts_nr_data(self) -> bool:
        """True if the procedure halts the 5G-NR user plane."""
        if self is HandoverType.NONE:
            return False
        # Every SCG procedure touches the NR leg; 4G HOs (MNBH/LTEH)
        # interrupt 5G data too (footnote, Section 5.2); MCGH is an SA
        # handover of the only (NR) leg.
        return True


_TECH_CHANGE: dict[HandoverType, TechChange] = {
    HandoverType.SCGA: TechChange.FOUR_TO_FIVE,
    HandoverType.SCGR: TechChange.FIVE_TO_FOUR,
    HandoverType.SCGM: TechChange.FIVE_TO_FIVE,
    HandoverType.SCGC: TechChange.FIVE_TO_FOUR_TO_FIVE,
    HandoverType.MNBH: TechChange.FIVE_TO_FIVE,
    HandoverType.MCGH: TechChange.FIVE_TO_FIVE,
    HandoverType.LTEH: TechChange.FOUR_TO_FOUR,
    HandoverType.NONE: TechChange.FOUR_TO_FOUR,
}

_CATEGORY: dict[HandoverType, HandoverCategory] = {
    HandoverType.SCGA: HandoverCategory.FIVE_G,
    HandoverType.SCGR: HandoverCategory.FIVE_G,
    HandoverType.SCGM: HandoverCategory.FIVE_G,
    HandoverType.SCGC: HandoverCategory.FIVE_G,
    HandoverType.MNBH: HandoverCategory.FOUR_G,
    HandoverType.MCGH: HandoverCategory.FIVE_G,
    HandoverType.LTEH: HandoverCategory.FOUR_G,
    HandoverType.NONE: HandoverCategory.FOUR_G,
}

#: Procedures a UE can undergo while its master leg is LTE (NSA or pure LTE).
NSA_PROCEDURES = (
    HandoverType.SCGA,
    HandoverType.SCGR,
    HandoverType.SCGM,
    HandoverType.SCGC,
    HandoverType.MNBH,
    HandoverType.LTEH,
)

#: Procedures a UE can undergo in SA 5G.
SA_PROCEDURES = (HandoverType.MCGH,)
