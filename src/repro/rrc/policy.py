"""Carrier handover decision logic — the black box Prognos learns.

The network side of mobility management: given the measurement reports a
UE sends, decide which procedure to run against which target cell. Real
carriers implement this as proprietary policy; the paper observes it is
(a) stable in time, (b) different across carriers, and (c) expressible
as "a sequence of MRs preceding a HO" (§7.1, e.g. [A2, A5] → inter-freq
LTE HO). Our policies are built exactly that way, so the sequential
patterns Prognos mines are the ground truth rules below:

* ``A3``(LTE)                       → LTEH (plain LTE) or MNBH / LTEH+SCG change (NSA)
* ``A2``(LTE) then ``A5``(LTE)      → inter-frequency LTEH
* ``NR-B1`` with no SCG             → SCGA
* ``NR-A2`` with SCG, B1 candidate  → SCGC (release+add in one procedure)
* ``NR-A2`` with SCG, no candidate  → SCGR
* ``NR-A3`` within the same gNB     → SCGM
* ``NR-A3`` in SA                   → MCGH

The SCGC target is chosen as the *first* neighbour that satisfies the B1
threshold rather than the strongest one — each leg of the release+add is
decided independently, with no view of the overall 5G→5G signal gain.
That is precisely the NSA inefficiency §6.2 blames for post-handover
throughput *dropping* 14% on average.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.radio.bands import RadioAccessTechnology
from repro.radio.rrs import RRSSample
from repro.ran.cells import Cell
from repro.rrc.events import EventType, MeasurementObject
from repro.rrc.measurement import MeasurementReport
from repro.rrc.taxonomy import HandoverType


@dataclass(frozen=True, slots=True)
class HandoverDecision:
    """The outcome of the network's handover logic for one report batch.

    Attributes:
        ho_type: procedure to run.
        target: new serving cell on the affected leg (None for SCGR).
        releases_scg: True when an anchor handover tears the SCG down
            (the §6.1 effective-coverage reduction mechanism).
        triggering_reports: the measurement reports that produced this
            decision, in arrival order — the "phase" Prognos mines.
    """

    ho_type: HandoverType
    target: Cell | None
    releases_scg: bool = False
    triggering_reports: tuple[MeasurementReport, ...] = ()


@dataclass(frozen=True, slots=True)
class AttachmentState:
    """UE attachment snapshot the policy decides against."""

    lte_serving: Cell | None
    nr_serving: Cell | None
    standalone: bool

    @property
    def nsa_attached(self) -> bool:
        return self.lte_serving is not None and self.nr_serving is not None


class HandoverPolicy:
    """One carrier's handover decision logic.

    Args:
        rng: randomness source for the anchor-keeps-SCG coin flip.
        anchor_keeps_scg_probability: probability that an anchor (LTE)
            handover finds the target eNB still supporting the current
            gNB link (→ MNBH keeping the SCG). The complementary case
            releases/changes the SCG — §6.1 observes carriers where this
            probability is effectively zero on low-band.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        anchor_keeps_scg_probability: float = 0.3,
        quality_aware_scgc: bool = False,
    ):
        if not 0.0 <= anchor_keeps_scg_probability <= 1.0:
            raise ValueError("probability must lie in [0, 1]")
        self._rng = rng
        self._anchor_keeps_scg = anchor_keeps_scg_probability
        #: §6.2's proposed mitigation: consider the *overall* handover
        #: sequence when changing gNBs — i.e., pick the strongest
        #: qualifying target instead of the first one. Off by default
        #: (today's NSA carriers do not do this; that is the finding).
        self._quality_aware_scgc = quality_aware_scgc

    def decide(
        self,
        state: AttachmentState,
        reports: list[MeasurementReport],
        nr_neighbours: dict[Cell, RRSSample],
        nr_b1_threshold_dbm: float,
    ) -> HandoverDecision | None:
        """First actionable decision over the reports (convenience)."""
        decisions = self.decide_all(state, reports, nr_neighbours, nr_b1_threshold_dbm)
        return decisions[0] if decisions else None

    def decide_all(
        self,
        state: AttachmentState,
        reports: list[MeasurementReport],
        nr_neighbours: dict[Cell, RRSSample],
        nr_b1_threshold_dbm: float,
    ) -> list[HandoverDecision]:
        """All actionable decisions over the reports, in arrival order.

        The master node (eNB / SA gNB) and the secondary node run their
        procedures independently, so one report batch can legitimately
        yield both an anchor handover and an SCG procedure.

        Args:
            state: current attachment.
            reports: buffered reports, in arrival order.
            nr_neighbours: audible NR neighbour cells (for SCGC target
                search when NR-A2 fires).
            nr_b1_threshold_dbm: the B1 threshold in force (SCGC's add
                leg applies the same bar as a fresh SCG addition).
        """
        decisions: list[HandoverDecision] = []
        seen_types: set[HandoverType] = set()
        for report in reports:
            decision = self._decide_one(state, report, nr_neighbours, nr_b1_threshold_dbm)
            if decision is not None and decision.ho_type not in seen_types:
                decisions.append(decision)
                seen_types.add(decision.ho_type)
        return decisions

    def _decide_one(
        self,
        state: AttachmentState,
        report: MeasurementReport,
        nr_neighbours: dict[Cell, RRSSample],
        nr_b1_threshold_dbm: float,
    ) -> HandoverDecision | None:
        event = report.config.event
        obj = report.config.measurement
        neighbour = report.neighbour_cell

        if state.standalone:
            # SA: the NR leg is the master; intra-frequency A3 drives MCGH.
            if obj is MeasurementObject.NR and event is EventType.A3 and neighbour is not None:
                if neighbour is not state.nr_serving:
                    return HandoverDecision(
                        HandoverType.MCGH, neighbour, triggering_reports=(report,)
                    )
            return None

        if obj is MeasurementObject.LTE:
            return self._decide_lte(state, report)
        return self._decide_nr(state, report, nr_neighbours, nr_b1_threshold_dbm)

    def _decide_lte(
        self, state: AttachmentState, report: MeasurementReport
    ) -> HandoverDecision | None:
        event = report.config.event
        neighbour = report.neighbour_cell
        serving = state.lte_serving
        if neighbour is None or neighbour is serving:
            return None
        if not isinstance(neighbour, Cell) or neighbour.rat is not RadioAccessTechnology.LTE:
            return None

        if event is EventType.A3:
            intra_freq = serving is not None and neighbour.band.name == serving.band.name
            if not intra_freq:
                # A3 is configured intra-frequency; other-band neighbours
                # are handled by A5.
                return None
            return self._anchor_handover(state, neighbour, report)
        if event is EventType.A5:
            # Serving bad + (typically other-band) neighbour good.
            return self._anchor_handover(state, neighbour, report)
        return None

    def _anchor_handover(
        self, state: AttachmentState, target: Cell, report: MeasurementReport
    ) -> HandoverDecision | None:
        if not state.nsa_attached:
            return HandoverDecision(HandoverType.LTEH, target, triggering_reports=(report,))
        if self._rng.random() < self._anchor_keeps_scg:
            # Target eNB maintains the X2 link to the current gNB: the
            # master-eNB handover keeps 5G data flowing on the same SCG.
            return HandoverDecision(HandoverType.MNBH, target, triggering_reports=(report,))
        # Anchor change forces the SCG down (§6.1): LTEH with SCG release;
        # the simulator re-adds via B1 once the new anchor configures it.
        return HandoverDecision(
            HandoverType.LTEH, target, releases_scg=True, triggering_reports=(report,)
        )

    def _decide_nr(
        self,
        state: AttachmentState,
        report: MeasurementReport,
        nr_neighbours: dict[Cell, RRSSample],
        nr_b1_threshold_dbm: float,
    ) -> HandoverDecision | None:
        event = report.config.event
        neighbour = report.neighbour_cell
        serving = state.nr_serving

        if event is EventType.B1:
            if serving is None and isinstance(neighbour, Cell):
                # The gNB addition picks the strongest reported candidate
                # (fresh additions are quality-driven; contrast with the
                # SCG Change path below, which is not).
                qualifying = [
                    cell
                    for cell, cell_sample in nr_neighbours.items()
                    if cell_sample.rsrp_dbm > nr_b1_threshold_dbm
                ]
                target = (
                    max(qualifying, key=lambda c: nr_neighbours[c].rsrp_dbm)
                    if qualifying
                    else neighbour
                )
                return HandoverDecision(
                    HandoverType.SCGA, target, triggering_reports=(report,)
                )
            return None

        if serving is None:
            return None

        if event is EventType.A2:
            # Serving NR turned bad. Release — or, if some other gNB's cell
            # already clears the B1 bar, do the release+add as one SCG
            # Change. The add leg takes the FIRST qualifying candidate in
            # cell-index order, not the best one (see module docstring).
            candidates = [
                cell
                for cell, sample in sorted(
                    nr_neighbours.items(), key=lambda item: item[0].gci
                )
                if cell.node_id != serving.node_id
                and sample.rsrp_dbm > nr_b1_threshold_dbm
            ]
            if candidates:
                if self._quality_aware_scgc:
                    target = max(candidates, key=lambda c: nr_neighbours[c].rsrp_dbm)
                else:
                    target = candidates[0]
                return HandoverDecision(
                    HandoverType.SCGC, target, triggering_reports=(report,)
                )
            return HandoverDecision(
                HandoverType.SCGR, None, releases_scg=True, triggering_reports=(report,)
            )

        if event is EventType.A3 and isinstance(neighbour, Cell):
            if neighbour.node_id == serving.node_id and neighbour is not serving:
                return HandoverDecision(
                    HandoverType.SCGM, neighbour, triggering_reports=(report,)
                )
            # Cross-gNB A3: NSA has no direct inter-gNB handover — the
            # report is consumed but no action follows (§2, §6.2).
            return None
        return None
