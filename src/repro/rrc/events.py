"""Measurement events — the paper's Table 4, with trigger evaluation.

A measurement event compares serving/neighbour radio quality against
configured thresholds. When the entering condition holds continuously for
the configured time-to-trigger (TTT), the UE sends a measurement report.
Hysteresis is applied on the serving side of each inequality as in
3GPP TS 36.331 / 38.331 ("report on leave" and A6 are out of scope for
this study and omitted, matching the paper).

Events exist in an LTE flavour and an NR flavour (the paper writes the
latter as NR-A2, NR-A3, NR-B1 in Fig. 16); the flavour is carried by the
:class:`MeasurementObject`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.radio.rrs import RRSSample


class MeasurementObject(enum.Enum):
    """Which radio the event measures."""

    LTE = "lte"
    NR = "nr"

    # Members are singletons, so identity hashing is equivalent to the
    # default — but skips a Python-level __hash__ on every dict lookup
    # (these key the per-tick serving/neighbour dicts on the serving
    # hot path).
    __hash__ = object.__hash__


class EventType(enum.Enum):
    """LTE/NR measurement event types (Table 4)."""

    A1 = "A1"  # serving becomes better than threshold
    A2 = "A2"  # serving becomes worse than threshold
    A3 = "A3"  # neighbour becomes offset better than serving
    A4 = "A4"  # (inter-RAT B1-like) neighbour better than threshold
    A5 = "A5"  # serving worse than thr1 AND neighbour better than thr2
    B1 = "B1"  # inter-RAT neighbour better than threshold
    PERIODIC = "P"

    __hash__ = object.__hash__

    @property
    def needs_neighbour(self) -> bool:
        return self in (EventType.A3, EventType.A4, EventType.A5, EventType.B1)


@dataclass(frozen=True, slots=True)
class EventConfig:
    """One configured measurement event.

    Attributes:
        event: the event type.
        measurement: which radio the event watches (LTE vs NR neighbours).
        threshold_dbm: main threshold (Phi). For A3 this is unused.
        threshold2_dbm: second threshold for A5 (Phi2).
        offset_db: A3 offset (Delta).
        hysteresis_db: entering-condition hysteresis.
        time_to_trigger_s: how long the condition must hold before a
            report fires.
        intra_node_only: restrict the event's candidate neighbours to
            cells of the serving cell's own node. Carriers scope the NR
            intra-frequency A3 measurement object to the serving gNB's
            cells: NSA has no direct inter-gNB handover to act on a
            cross-gNB A3, so those neighbours are simply not configured.
        intra_frequency_only: restrict candidates to neighbours on the
            serving cell's own band (LTE A3 is an intra-frequency event;
            other-band neighbours are handled by A5).
        only_when_detached: the event is only configured while the UE
            has no leg on its measurement object — B1's purpose is
            *discovering* coverage to add; once the SCG is up the
            network deconfigures it.
    """

    event: EventType
    measurement: MeasurementObject
    threshold_dbm: float = 0.0
    threshold2_dbm: float = 0.0
    offset_db: float = 0.0
    hysteresis_db: float = 0.0
    time_to_trigger_s: float = 0.0
    intra_node_only: bool = False
    intra_frequency_only: bool = False
    only_when_detached: bool = False

    @property
    def needs_serving(self) -> bool:
        """Events that compare against the serving cell require one.

        Without this, a missing leg reads as serving = -inf and A2/A3/A5
        would fire perpetually — junk reports real UEs never send.
        """
        return self.event in (
            EventType.A1,
            EventType.A2,
            EventType.A3,
            EventType.A5,
        )

    def __post_init__(self) -> None:
        if self.time_to_trigger_s < 0:
            raise ValueError("time-to-trigger must be non-negative")
        if self.hysteresis_db < 0:
            raise ValueError("hysteresis must be non-negative")

    @property
    def label(self) -> str:
        """Human-readable event label, e.g. ``"A3"`` or ``"NR-B1"``."""
        prefix = "NR-" if self.measurement is MeasurementObject.NR else ""
        return f"{prefix}{self.event.value}"


def evaluate_event(
    config: EventConfig,
    serving: RRSSample | None,
    neighbour: RRSSample | None,
) -> bool:
    """Evaluate the *entering condition* of an event (Table 4).

    ``serving`` / ``neighbour`` may be None when the corresponding cell is
    inaudible; an inaudible serving cell counts as arbitrarily weak (so A2
    fires) and an inaudible neighbour can never satisfy a neighbour-based
    condition.
    """
    serving_rsrp = serving.rsrp_dbm if serving is not None else float("-inf")
    neighbour_rsrp = neighbour.rsrp_dbm if neighbour is not None else float("-inf")
    hys = config.hysteresis_db

    if config.event is EventType.A1:
        return serving_rsrp - hys > config.threshold_dbm
    if config.event is EventType.A2:
        return serving_rsrp + hys < config.threshold_dbm
    if config.event is EventType.A3:
        return neighbour_rsrp > serving_rsrp + config.offset_db + hys
    if config.event in (EventType.A4, EventType.B1):
        return neighbour_rsrp - hys > config.threshold_dbm
    if config.event is EventType.A5:
        return (
            serving_rsrp + hys < config.threshold_dbm
            and neighbour_rsrp - hys > config.threshold2_dbm
        )
    if config.event is EventType.PERIODIC:
        return True
    raise ValueError(f"unhandled event type {config.event}")
