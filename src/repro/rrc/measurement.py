"""Measurement reports and the UE-side event monitor.

The monitor is fed one tick of RRS samples at a time (serving plus
neighbours, per measurement object), tracks how long each event's
entering condition has held per candidate cell, and emits
:class:`MeasurementReport` objects once the time-to-trigger elapses.
A fired (event, cell) pair stays latched until its condition lapses, so
one sustained condition produces one report — matching how UEs rate-limit
reporting (``reportAmount=1`` configurations dominate the paper's logs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.radio.rrs import RRSSample
from repro.rrc.events import EventConfig, EventType, MeasurementObject, evaluate_event


@dataclass(frozen=True, slots=True)
class MeasurementReport:
    """A UE → network measurement report (one triggered event).

    Attributes:
        time_s: simulation time at which the report left the UE.
        config: the event configuration that fired.
        serving_cell: identity of the serving cell on the event's
            measurement object (None when the UE has no such leg —
            e.g. NR-B1 before SCG addition).
        neighbour_cell: the cell satisfying the neighbour condition
            (None for serving-only events such as A1/A2).
        serving_sample: RRS of the serving cell at fire time.
        neighbour_sample: RRS of the reported neighbour at fire time.
    """

    time_s: float
    config: EventConfig
    serving_cell: object | None
    neighbour_cell: object | None
    serving_sample: RRSSample | None = None
    neighbour_sample: RRSSample | None = None

    @property
    def label(self) -> str:
        return self.config.label


class L3Filter:
    """3GPP layer-3 measurement filtering (TS 36.331 / 38.331 §5.5.3.2).

    The UE smooths raw per-cell measurements with an exponential filter
    ``F_n = (1 - a) F_{n-1} + a M_n`` before evaluating events — without
    it, fast fading would make every A3 comparison ping-pong. ``alpha``
    is the per-sample coefficient (the spec's filterCoefficient k maps to
    a = 1/2^(k/4) at a 200 ms sampling period; at our 50 ms ticks the
    equivalent per-tick alpha for the common k=4 is about 0.16).

    Cells that stop being measured are forgotten after ``forget_s``.
    """

    def __init__(self, alpha: float = 0.16, forget_s: float = 2.0):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        self._alpha = alpha
        self._forget_s = forget_s
        self._state: dict[object, tuple[float, RRSSample]] = {}

    def update(self, time_s: float, raw: dict[object, RRSSample]) -> dict[object, RRSSample]:
        """Fold one tick of raw samples in; return filtered samples."""
        a = self._alpha
        filtered: dict[object, RRSSample] = {}
        for cell, sample in raw.items():
            previous = self._state.get(cell)
            if previous is None or time_s - previous[0] > self._forget_s:
                smoothed = sample
            else:
                old = previous[1]
                smoothed = RRSSample(
                    rsrp_dbm=(1 - a) * old.rsrp_dbm + a * sample.rsrp_dbm,
                    rsrq_db=(1 - a) * old.rsrq_db + a * sample.rsrq_db,
                    sinr_db=(1 - a) * old.sinr_db + a * sample.sinr_db,
                )
            self._state[cell] = (time_s, smoothed)
            filtered[cell] = smoothed
        # Forget cells that have not been measured recently.
        stale = [c for c, (t, _) in self._state.items() if time_s - t > self._forget_s]
        for cell in stale:
            del self._state[cell]
        return filtered

    def reset(self) -> None:
        self._state.clear()


@dataclass
class _TriggerState:
    held_since_s: float | None = None
    latched: bool = False
    last_fire_s: float = float("-inf")


class EventMonitor:
    """Tracks entering-condition durations and fires measurement reports.

    While an entering condition keeps holding, the report re-fires every
    ``report_interval_s`` (3GPP reportInterval with reportAmount > 1) —
    real UEs keep reminding the network until it acts or the condition
    lapses.
    """

    def __init__(self, configs: list[EventConfig], report_interval_s: float = 0.48):
        if not configs:
            raise ValueError("event monitor needs at least one event config")
        if report_interval_s <= 0:
            raise ValueError("report interval must be positive")
        self._configs = list(configs)
        self._report_interval_s = report_interval_s
        self._state: dict[tuple[int, object | None], _TriggerState] = {}

    @property
    def configs(self) -> list[EventConfig]:
        return list(self._configs)

    def reset(self) -> None:
        """Drop all trigger state (used after handovers change the serving set)."""
        self._state.clear()

    def reset_event(self, measurement: MeasurementObject) -> None:
        """Drop trigger state for one measurement object only."""
        for (index, _cell), state in list(self._state.items()):
            if self._configs[index].measurement is measurement:
                state.held_since_s = None
                state.latched = False

    def observe(
        self,
        time_s: float,
        serving: dict[MeasurementObject, tuple[object, RRSSample] | None],
        neighbours: dict[MeasurementObject, dict[object, RRSSample]],
    ) -> list[MeasurementReport]:
        """Feed one tick of measurements; return any reports that fire.

        Args:
            time_s: current simulation time.
            serving: per measurement object, the serving (cell, sample)
                pair or None if the UE has no leg on that object.
            neighbours: per measurement object, audible neighbour cells
                and their samples (excluding the serving cell).
        """
        reports: list[MeasurementReport] = []
        for index, config in enumerate(self._configs):
            obj = config.measurement
            serving_pair = serving.get(obj)
            serving_cell = serving_pair[0] if serving_pair else None
            serving_sample = serving_pair[1] if serving_pair else None
            # Configuration gating: serving-referencing events need the
            # leg to exist; discovery events (B1) are deconfigured while
            # the leg is up. A gated-out event's state unlatches.
            if (config.needs_serving and serving_pair is None) or (
                config.only_when_detached and serving_pair is not None
            ):
                for key, state in self._state.items():
                    if key[0] == index:
                        state.held_since_s = None
                        state.latched = False
                continue
            if config.event.needs_neighbour:
                candidates = neighbours.get(obj, {})
                if config.intra_node_only and serving_cell is not None:
                    serving_node = getattr(serving_cell, "node_id", None)
                    candidates = {
                        cell: sample
                        for cell, sample in candidates.items()
                        if getattr(cell, "node_id", None) == serving_node
                    }
                elif config.intra_node_only:
                    candidates = {}
                if config.intra_frequency_only and serving_cell is not None:
                    serving_band = getattr(
                        getattr(serving_cell, "band", None), "name", None
                    )
                    candidates = {
                        cell: sample
                        for cell, sample in candidates.items()
                        if getattr(getattr(cell, "band", None), "name", None)
                        == serving_band
                    }
                for cell, sample in candidates.items():
                    fired = self._advance(
                        (index, cell),
                        evaluate_event(config, serving_sample, sample),
                        time_s,
                        config,
                    )
                    if fired:
                        reports.append(
                            MeasurementReport(
                                time_s=time_s,
                                config=config,
                                serving_cell=serving_cell,
                                neighbour_cell=cell,
                                serving_sample=serving_sample,
                                neighbour_sample=sample,
                            )
                        )
            else:
                fired = self._advance(
                    (index, None),
                    evaluate_event(config, serving_sample, None),
                    time_s,
                    config,
                )
                if fired:
                    reports.append(
                        MeasurementReport(
                            time_s=time_s,
                            config=config,
                            serving_cell=serving_cell,
                            neighbour_cell=None,
                            serving_sample=serving_sample,
                        )
                    )
        return reports

    def _advance(
        self,
        key: tuple[int, object | None],
        condition: bool,
        time_s: float,
        config: EventConfig,
    ) -> bool:
        state = self._state.setdefault(key, _TriggerState())
        if not condition:
            state.held_since_s = None
            state.latched = False
            return False
        if state.latched:
            # Condition still holding: periodic re-report.
            if time_s - state.last_fire_s + 1e-9 >= self._report_interval_s:
                state.last_fire_s = time_s
                return True
            return False
        if state.held_since_s is None:
            state.held_since_s = time_s
        if time_s - state.held_since_s + 1e-9 >= config.time_to_trigger_s:
            state.latched = True
            state.last_fire_s = time_s
            return True
        return False
