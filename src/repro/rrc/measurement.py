"""Measurement reports and the UE-side event monitor.

The monitor is fed one tick of RRS samples at a time (serving plus
neighbours, per measurement object), tracks how long each event's
entering condition has held per candidate cell, and emits
:class:`MeasurementReport` objects once the time-to-trigger elapses.
A fired (event, cell) pair stays latched until its condition lapses, so
one sustained condition produces one report — matching how UEs rate-limit
reporting (``reportAmount=1`` configurations dominate the paper's logs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.radio.rrs import RRSSample
from repro.rrc.events import EventConfig, EventType, MeasurementObject, evaluate_event


@dataclass(frozen=True, slots=True)
class MeasurementReport:
    """A UE → network measurement report (one triggered event).

    Attributes:
        time_s: simulation time at which the report left the UE.
        config: the event configuration that fired.
        serving_cell: identity of the serving cell on the event's
            measurement object (None when the UE has no such leg —
            e.g. NR-B1 before SCG addition).
        neighbour_cell: the cell satisfying the neighbour condition
            (None for serving-only events such as A1/A2).
        serving_sample: RRS of the serving cell at fire time.
        neighbour_sample: RRS of the reported neighbour at fire time.
    """

    time_s: float
    config: EventConfig
    serving_cell: object | None
    neighbour_cell: object | None
    serving_sample: RRSSample | None = None
    neighbour_sample: RRSSample | None = None

    @property
    def label(self) -> str:
        return self.config.label


class L3Filter:
    """3GPP layer-3 measurement filtering (TS 36.331 / 38.331 §5.5.3.2).

    The UE smooths raw per-cell measurements with an exponential filter
    ``F_n = (1 - a) F_{n-1} + a M_n`` before evaluating events — without
    it, fast fading would make every A3 comparison ping-pong. ``alpha``
    is the per-sample coefficient (the spec's filterCoefficient k maps to
    a = 1/2^(k/4) at a 200 ms sampling period; at our 50 ms ticks the
    equivalent per-tick alpha for the common k=4 is about 0.16).

    Cells that stop being measured are forgotten after ``forget_s``.
    """

    _INITIAL_CAPACITY = 32
    _COMPACT_EVERY = 512

    def __init__(self, alpha: float = 0.16, forget_s: float = 2.0):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0, 1]")
        self._alpha = alpha
        self._forget_s = forget_s
        self._index: dict[object, int] = {}
        self._keys: list[object] = []
        self._n = 0
        self._updates = 0
        #: Bumped when compaction moves slots (cached slot arrays stale).
        self.generation = 0
        self._last_time = np.empty(self._INITIAL_CAPACITY)
        self._vals = np.empty((self._INITIAL_CAPACITY, 3))

    def _slot(self, cell: object) -> int:
        i = self._index.get(cell)
        if i is not None:
            return i
        if self._n == self._last_time.shape[0]:
            capacity = self._last_time.shape[0] * 2
            last_time = np.empty(capacity)
            vals = np.empty((capacity, 3))
            last_time[: self._n] = self._last_time[: self._n]
            vals[: self._n] = self._vals[: self._n]
            self._last_time, self._vals = last_time, vals
        i = self._n
        self._last_time[i] = -np.inf
        self._n += 1
        self._index[cell] = i
        self._keys.append(cell)
        return i

    def slot_array(self, keys: list) -> np.ndarray:
        """Array of filter slots for ``keys`` (creating missing ones).

        Callers that reuse a fixed key set can cache this as long as
        :attr:`generation` is unchanged.
        """
        return np.fromiter(
            (self._slot(k) for k in keys), dtype=np.intp, count=len(keys)
        )

    def update_block(
        self,
        times_s: np.ndarray,
        slots: np.ndarray,
        rsrp: np.ndarray,
        rsrq: np.ndarray,
        sinr: np.ndarray,
        measured: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fold a block of ticks in; return filtered (ticks, cells) arrays.

        ``slots`` comes from :meth:`slot_array`; ``measured[t, i]`` marks
        whether cell ``i`` was actually measured at tick ``t`` — cells
        measured every tick smooth continuously, unmeasured ticks leave a
        cell's state untouched (it goes stale and restarts from raw, like
        in :meth:`update_batch`). Rows of the output for unmeasured cells
        are filler and must be masked by the caller.
        """
        ticks, n = rsrp.shape
        raw = np.stack((rsrp, rsrq, sinr), axis=2)
        if n == 0:
            empty = np.empty((ticks, 0))
            return empty, empty, empty
        out = np.empty_like(raw)
        a = self._alpha
        # Work on local copies; one gather/scatter per block, not per tick.
        last_time = self._last_time[slots].copy()
        vals = self._vals[slots].copy()
        for t in range(ticks):
            time_s = times_s[t]
            fresh = (time_s - last_time) <= self._forget_s
            smoothed = np.where(fresh[:, None], (1 - a) * vals + a * raw[t], raw[t])
            m = measured[t]
            vals = np.where(m[:, None], smoothed, vals)
            last_time = np.where(m, time_s, last_time)
            out[t] = smoothed
        self._last_time[slots] = last_time
        self._vals[slots] = vals
        before = self._updates
        self._updates += ticks
        if self._updates // self._COMPACT_EVERY != before // self._COMPACT_EVERY:
            self._compact(float(times_s[-1]))
        return out[..., 0], out[..., 1], out[..., 2]

    def update_batch(
        self,
        time_s: float,
        keys: list,
        rsrp: np.ndarray,
        rsrq: np.ndarray,
        sinr: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fold one tick of raw sample arrays in; return filtered arrays.

        ``keys[i]`` owns row ``i`` of each array. Cells whose last
        measurement is older than ``forget_s`` restart from the raw
        sample, exactly like never-seen cells.
        """
        n = len(keys)
        if n == 0:
            empty = np.empty(0)
            return empty, empty, empty
        idx = np.fromiter((self._slot(k) for k in keys), dtype=np.intp, count=n)
        fresh = (time_s - self._last_time[idx]) <= self._forget_s
        a = self._alpha
        old = self._vals[idx]
        raw = np.stack((rsrp, rsrq, sinr), axis=1)
        smoothed = np.where(fresh[:, None], (1 - a) * old + a * raw, raw)
        self._vals[idx] = smoothed
        self._last_time[idx] = time_s
        self._updates += 1
        if self._updates % self._COMPACT_EVERY == 0:
            self._compact(time_s)
        return smoothed[:, 0], smoothed[:, 1], smoothed[:, 2]

    def update(self, time_s: float, raw: dict[object, RRSSample]) -> dict[object, RRSSample]:
        """Fold one tick of raw samples in; return filtered samples."""
        keys = list(raw.keys())
        n = len(keys)
        rsrp = np.fromiter((s.rsrp_dbm for s in raw.values()), dtype=float, count=n)
        rsrq = np.fromiter((s.rsrq_db for s in raw.values()), dtype=float, count=n)
        sinr = np.fromiter((s.sinr_db for s in raw.values()), dtype=float, count=n)
        f_rsrp, f_rsrq, f_sinr = self.update_batch(time_s, keys, rsrp, rsrq, sinr)
        f_rsrp, f_rsrq, f_sinr = f_rsrp.tolist(), f_rsrq.tolist(), f_sinr.tolist()
        return {
            cell: RRSSample(rsrp_dbm=f_rsrp[i], rsrq_db=f_rsrq[i], sinr_db=f_sinr[i])
            for i, cell in enumerate(keys)
        }

    def _compact(self, time_s: float) -> None:
        """Drop state for cells not measured within the forget horizon."""
        keep = (time_s - self._last_time[: self._n]) <= self._forget_s
        if bool(keep.all()):
            return
        kept = np.nonzero(keep)[0]
        self._last_time[: kept.size] = self._last_time[: self._n][kept]
        self._vals[: kept.size] = self._vals[: self._n][kept]
        self._keys = [self._keys[i] for i in kept.tolist()]
        self._index = {key: i for i, key in enumerate(self._keys)}
        self._n = len(self._keys)
        self.generation += 1

    def reset(self) -> None:
        self._index.clear()
        self._keys.clear()
        self._n = 0
        self.generation += 1


@dataclass
class _TriggerState:
    held_since_s: float | None = None
    latched: bool = False
    last_fire_s: float = float("-inf")


@dataclass(slots=True)
class ObjectView:
    """One measurement object's state over a measurement block.

    The vectorized simulator feeds :meth:`EventMonitor.observe_arrays`
    one of these per measurement object instead of materialising
    per-cell sample dicts. ``cells`` is the block-fixed measured cell
    list for the object; ``rsrp_block``/``mask_block`` are the block's
    smoothed RSRP and audibility as (ticks, cells) arrays and ``tick``
    selects the current row. ``rsrp_rows``/``mask_rows`` mirror them as
    nested python lists so single-element reads skip numpy scalar
    boxing. ``sample_at`` lazily builds an
    :class:`~repro.radio.rrs.RRSSample` for a position (only fired
    reports ever need sample objects). ``token`` changes whenever
    ``cells`` changes, keying the monitor's per-block caches.
    """

    cells: list
    pos_of: dict
    token: object = None
    serving_cell: object | None = None
    serving_pos: int | None = None
    rsrp_block: np.ndarray | None = None
    mask_block: np.ndarray | None = None
    rsrp_rows: list | None = None
    rsrq_rows: list | None = None
    sinr_rows: list | None = None
    mask_rows: list | None = None
    tick: int = 0
    sample_at: object = None


class EventMonitor:
    """Tracks entering-condition durations and fires measurement reports.

    While an entering condition keeps holding, the report re-fires every
    ``report_interval_s`` (3GPP reportInterval with reportAmount > 1) —
    real UEs keep reminding the network until it acts or the condition
    lapses.
    """

    def __init__(self, configs: list[EventConfig], report_interval_s: float = 0.48):
        if not configs:
            raise ValueError("event monitor needs at least one event config")
        if report_interval_s <= 0:
            raise ValueError("report interval must be positive")
        self._configs = list(configs)
        self._report_interval_s = report_interval_s
        self._state: dict[tuple[int, object | None], _TriggerState] = {}
        # (config idx, block token, serving cell, serving audible) ->
        # (candidate position set, per-tick triggered-position lists);
        # valid as long as the view's cell list is.
        self._block_cache: dict[tuple, tuple[set[int], list[list[int]]]] = {}
        # Attribute/property lookups hoisted out of the per-tick loop.
        self._fast = [
            (
                config,
                config.event,
                config.event.needs_neighbour,
                config.needs_serving,
                config.only_when_detached,
                config.hysteresis_db,
            )
            for config in self._configs
        ]

    @property
    def configs(self) -> list[EventConfig]:
        return list(self._configs)

    def reset(self) -> None:
        """Drop all trigger state (used after handovers change the serving set)."""
        self._state.clear()

    def reset_event(self, measurement: MeasurementObject) -> None:
        """Drop trigger state for one measurement object only."""
        for key in [
            k for k in self._state if self._configs[k[0]].measurement is measurement
        ]:
            del self._state[key]

    def observe(
        self,
        time_s: float,
        serving: dict[MeasurementObject, tuple[object, RRSSample] | None],
        neighbours: dict[MeasurementObject, dict[object, RRSSample]],
    ) -> list[MeasurementReport]:
        """Feed one tick of measurements; return any reports that fire.

        Args:
            time_s: current simulation time.
            serving: per measurement object, the serving (cell, sample)
                pair or None if the UE has no leg on that object.
            neighbours: per measurement object, audible neighbour cells
                and their samples (excluding the serving cell).
        """
        reports: list[MeasurementReport] = []
        for index, config in enumerate(self._configs):
            obj = config.measurement
            serving_pair = serving.get(obj)
            serving_cell = serving_pair[0] if serving_pair else None
            serving_sample = serving_pair[1] if serving_pair else None
            # Configuration gating: serving-referencing events need the
            # leg to exist; discovery events (B1) are deconfigured while
            # the leg is up. A gated-out event's state unlatches.
            if (config.needs_serving and serving_pair is None) or (
                config.only_when_detached and serving_pair is not None
            ):
                for key in [k for k in self._state if k[0] == index]:
                    del self._state[key]
                continue
            if config.event.needs_neighbour:
                candidates = neighbours.get(obj, {})
                if config.intra_node_only and serving_cell is not None:
                    serving_node = getattr(serving_cell, "node_id", None)
                    candidates = {
                        cell: sample
                        for cell, sample in candidates.items()
                        if getattr(cell, "node_id", None) == serving_node
                    }
                elif config.intra_node_only:
                    candidates = {}
                if config.intra_frequency_only and serving_cell is not None:
                    serving_band = getattr(
                        getattr(serving_cell, "band", None), "name", None
                    )
                    candidates = {
                        cell: sample
                        for cell, sample in candidates.items()
                        if getattr(getattr(cell, "band", None), "name", None)
                        == serving_band
                    }
                for cell, sample in candidates.items():
                    fired = self._advance(
                        (index, cell),
                        evaluate_event(config, serving_sample, sample),
                        time_s,
                        config,
                    )
                    if fired:
                        reports.append(
                            MeasurementReport(
                                time_s=time_s,
                                config=config,
                                serving_cell=serving_cell,
                                neighbour_cell=cell,
                                serving_sample=serving_sample,
                                neighbour_sample=sample,
                            )
                        )
            else:
                fired = self._advance(
                    (index, None),
                    evaluate_event(config, serving_sample, None),
                    time_s,
                    config,
                )
                if fired:
                    reports.append(
                        MeasurementReport(
                            time_s=time_s,
                            config=config,
                            serving_cell=serving_cell,
                            neighbour_cell=None,
                            serving_sample=serving_sample,
                        )
                    )
        return reports

    def observe_arrays(
        self, time_s: float, views: dict[MeasurementObject, ObjectView]
    ) -> list[MeasurementReport]:
        """Array-form :meth:`observe` for the vectorized simulator.

        Produces the same reports in the same order as :meth:`observe`
        fed the equivalent sample dicts: reports append in config order,
        and within a config in ascending candidate position order (the
        insertion order of the dicts the scalar path builds). Candidate
        filtering and the entering conditions are evaluated for the whole
        block at once the first time a (config, serving) pair is seen —
        the per-tick work is a cache lookup plus advancing the handful of
        triggered or active cells.
        """
        reports: list[MeasurementReport] = []
        state = self._state
        for index, (config, ev, needs_nb, needs_srv, only_det, hys) in enumerate(
            self._fast
        ):
            view = views.get(config.measurement)
            t = 0 if view is None else view.tick
            spos = None if view is None else view.serving_pos
            serving_ok = (
                view is not None
                and view.serving_cell is not None
                and spos is not None
                and view.mask_rows[t][spos]
            )
            if (needs_srv and not serving_ok) or (only_det and serving_ok):
                if state:
                    for key in [k for k in state if k[0] == index]:
                        del state[key]
                continue
            serving_cell = view.serving_cell if serving_ok else None
            serving_sample: RRSSample | None = None
            if needs_nb:
                if view is None or not view.cells:
                    continue
                pos_set, true_lists = self._block_eval(
                    index, config, ev, hys, view, serving_cell
                )
                true_list = true_lists[t]
                if state:
                    actives = [k for k in state if k[0] == index]
                    if actives:
                        mask_row = view.mask_rows[t]
                        pos_of = view.pos_of
                        for key in actives:
                            p = pos_of.get(key[1])
                            # Cells outside today's candidate set
                            # (unmeasured, filtered out, or inaudible)
                            # keep their state, as in the dict path;
                            # audible candidates whose condition lapsed
                            # reset.
                            if (
                                p is None
                                or p in true_list
                                or p not in pos_set
                                or not mask_row[p]
                            ):
                                continue
                            del state[key]
                for p in true_list:
                    cell = view.cells[p]
                    if self._advance((index, cell), True, time_s, config):
                        if serving_sample is None and serving_ok:
                            serving_sample = view.sample_at(spos)
                        reports.append(
                            MeasurementReport(
                                time_s=time_s,
                                config=config,
                                serving_cell=serving_cell,
                                neighbour_cell=cell,
                                serving_sample=serving_sample,
                                neighbour_sample=view.sample_at(p),
                            )
                        )
            else:
                if ev is EventType.A1:
                    cond = view.rsrp_rows[t][spos] - hys > config.threshold_dbm
                elif ev is EventType.A2:
                    cond = view.rsrp_rows[t][spos] + hys < config.threshold_dbm
                else:  # PERIODIC
                    cond = True
                if self._advance((index, None), cond, time_s, config):
                    if serving_sample is None and serving_ok:
                        serving_sample = view.sample_at(spos)
                    reports.append(
                        MeasurementReport(
                            time_s=time_s,
                            config=config,
                            serving_cell=serving_cell,
                            neighbour_cell=None,
                            serving_sample=serving_sample,
                        )
                    )
        return reports

    def _block_eval(
        self,
        index: int,
        config: EventConfig,
        ev: EventType,
        hys: float,
        view: ObjectView,
        serving_cell: object | None,
    ) -> tuple[set[int], list[list[int]]]:
        """Candidate set and per-tick triggered positions for a block.

        Keyed on the *actual* serving (identity exclusion) and whether it
        is audible (filter scoping) — both change the candidate set. The
        entering condition only depends on the block's smoothed RSRP and
        the serving column, so it is evaluated for every (tick, cell) in
        one vectorized pass; ticks where the config is gated out simply
        never consult their row.
        """
        # serving_pos stands in for the serving cell when it is measured
        # (bijective within a token, cheaper to hash than a Cell).
        skey = view.serving_pos if view.serving_pos is not None else view.serving_cell
        key = (index, view.token, skey, serving_cell is not None)
        cached = self._block_cache.get(key)
        if cached is not None:
            return cached
        positions: list[int] = []
        if not (config.intra_node_only and serving_cell is None):
            want_node = getattr(serving_cell, "node_id", None)
            want_band = getattr(getattr(serving_cell, "band", None), "name", None)
            for p, cell in enumerate(view.cells):
                if cell is view.serving_cell:
                    continue
                if config.intra_node_only and getattr(cell, "node_id", None) != want_node:
                    continue
                if (
                    config.intra_frequency_only
                    and serving_cell is not None
                    and getattr(getattr(cell, "band", None), "name", None) != want_band
                ):
                    continue
                positions.append(p)
        ticks = view.rsrp_block.shape[0]
        true_lists: list[list[int]] = [[] for _ in range(ticks)]
        if positions:
            cand = np.array(positions, dtype=np.intp)
            cand_rsrp = view.rsrp_block[:, cand]
            if ev is EventType.A3:
                scol = view.rsrp_block[:, view.serving_pos]
                cond = cand_rsrp > scol[:, None] + config.offset_db + hys
            elif ev is EventType.A5:
                scol = view.rsrp_block[:, view.serving_pos]
                cond = (scol + hys < config.threshold_dbm)[:, None] & (
                    cand_rsrp - hys > config.threshold2_dbm
                )
            else:  # A4 / B1
                cond = cand_rsrp - hys > config.threshold_dbm
            cond &= view.mask_block[:, cand]
            tt, pp = np.nonzero(cond)
            for t_, p_ in zip(tt.tolist(), pp.tolist()):
                true_lists[t_].append(positions[p_])
        if len(self._block_cache) > 256:
            self._block_cache.clear()
        result = (set(positions), true_lists)
        self._block_cache[key] = result
        return result

    def _advance(
        self,
        key: tuple[int, object | None],
        condition: bool,
        time_s: float,
        config: EventConfig,
    ) -> bool:
        if not condition:
            # Dropping the entry is equivalent to resetting it: last_fire_s
            # is only read while latched, and latching always rewrites it.
            self._state.pop(key, None)
            return False
        state = self._state.get(key)
        if state is None:
            state = self._state[key] = _TriggerState()
        if state.latched:
            # Condition still holding: periodic re-report.
            if time_s - state.last_fire_s + 1e-9 >= self._report_interval_s:
                state.last_fire_s = time_s
                return True
            return False
        if state.held_since_s is None:
            state.held_since_s = time_s
        if time_s - state.held_since_s + 1e-9 >= config.time_to_trigger_s:
            state.latched = True
            state.last_fire_s = time_s
            return True
        return False
