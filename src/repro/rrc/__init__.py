"""RRC-layer machinery: events, measurement reports, and handovers.

This package encodes the control-plane side of the paper:

* Table 2's handover taxonomy (:mod:`repro.rrc.taxonomy`),
* Table 4's LTE/NR measurement events with time-to-trigger
  (:mod:`repro.rrc.events`),
* measurement report objects and the UE-side event monitor
  (:mod:`repro.rrc.measurement`),
* carrier handover decision policies — the "black box" Prognos learns
  (:mod:`repro.rrc.policy`),
* handover execution with the paper's T1 (preparation) / T2 (execution)
  decomposition (:mod:`repro.rrc.handover`), and
* per-handover signaling message accounting (:mod:`repro.rrc.signaling`).
"""

from repro.rrc.taxonomy import HandoverType, HandoverCategory, TechChange
from repro.rrc.events import (
    EventType,
    EventConfig,
    MeasurementObject,
    evaluate_event,
)
from repro.rrc.measurement import MeasurementReport, EventMonitor
from repro.rrc.handover import HandoverTimingModel, HandoverStage, HandoverExecution
from repro.rrc.signaling import SignalingModel, SignalingTally
from repro.rrc.policy import HandoverPolicy, HandoverDecision

__all__ = [
    "EventConfig",
    "EventMonitor",
    "EventType",
    "HandoverCategory",
    "HandoverDecision",
    "HandoverExecution",
    "HandoverPolicy",
    "HandoverStage",
    "HandoverTimingModel",
    "HandoverType",
    "MeasurementObject",
    "MeasurementReport",
    "SignalingModel",
    "SignalingTally",
    "TechChange",
    "evaluate_event",
]
