"""Handover execution timing: the T1/T2 decomposition of Section 5.2.

The paper splits every handover into a *preparation* stage T1 (the
network decides on and prepares the target cell; the UE keeps limping on
the old cell) and an *execution* stage T2 (RRC reconfiguration + random
access on the target; the affected data plane is halted). We sample both
stages from per-procedure Gamma distributions whose means are calibrated
to the paper's measurements:

* LTE handover ≈ 76 ms total, NSA ≈ 167 ms (+119%), SA ≈ 110 ms;
* T1 is ~41% of an NSA handover and ~48% longer than LTE's T1;
* NSA T2 runs 1.4-5.4× LTE's T2; mmWave T2 is 42-45% above low-band
  (beam management), even though mmWave RACH itself is faster;
* SA shows LTE-comparable median T1 but much larger variance (technical
  immaturity, Section 5.2);
* a non-co-located eNB/gNB pair adds ≈13 ms of cross-tower signalling
  to T1 (Section 6.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.radio.bands import BandClass
from repro.rrc.taxonomy import HandoverType


class HandoverStage(enum.Enum):
    PREPARATION = "T1"
    EXECUTION = "T2"


@dataclass(frozen=True, slots=True)
class StageDistribution:
    """Gamma-distributed stage duration (mean/std in milliseconds)."""

    mean_ms: float
    std_ms: float

    def __post_init__(self) -> None:
        if self.mean_ms <= 0 or self.std_ms <= 0:
            raise ValueError("stage duration mean/std must be positive")

    def sample_ms(self, rng: np.random.Generator) -> float:
        shape = (self.mean_ms / self.std_ms) ** 2
        scale = self.std_ms**2 / self.mean_ms
        return float(rng.gamma(shape, scale))


#: Cross-tower (non-co-located eNB/gNB) preparation penalty, Section 6.3.
NON_COLOCATION_T1_PENALTY_MS = 13.0

#: mmWave execution-stage multiplier (beam management), Section 5.2.
MMWAVE_T2_MULTIPLIER = 1.43

# Calibrated stage distributions per procedure. Keyed by
# (HandoverType, is_standalone_context). LTEH appears twice because the
# paper distinguishes LTEH measured under plain LTE from LTEH measured
# while NSA-attached (extra eNB<->gNB coordination inflates both stages).
_DEFAULT_T1: dict[tuple[HandoverType, bool], StageDistribution] = {
    (HandoverType.LTEH, False): StageDistribution(46.0, 12.0),
    (HandoverType.MNBH, False): StageDistribution(72.0, 18.0),
    (HandoverType.SCGA, False): StageDistribution(64.0, 16.0),
    (HandoverType.SCGR, False): StageDistribution(58.0, 15.0),
    (HandoverType.SCGM, False): StageDistribution(60.0, 15.0),
    (HandoverType.SCGC, False): StageDistribution(76.0, 19.0),
    (HandoverType.MCGH, True): StageDistribution(50.0, 38.0),
}

_DEFAULT_T2: dict[tuple[HandoverType, bool], StageDistribution] = {
    (HandoverType.LTEH, False): StageDistribution(30.0, 8.0),
    (HandoverType.MNBH, False): StageDistribution(88.0, 20.0),
    (HandoverType.SCGA, False): StageDistribution(92.0, 22.0),
    (HandoverType.SCGR, False): StageDistribution(72.0, 18.0),
    (HandoverType.SCGM, False): StageDistribution(90.0, 20.0),
    (HandoverType.SCGC, False): StageDistribution(112.0, 26.0),
    (HandoverType.MCGH, True): StageDistribution(60.0, 28.0),
}

# The "LTEH while NSA-attached" variants (Fig. 8/9 plot them separately).
_NSA_LTEH_T1 = StageDistribution(70.0, 17.0)
_NSA_LTEH_T2 = StageDistribution(80.0, 19.0)


@dataclass(frozen=True, slots=True)
class HandoverExecution:
    """A fully-timed handover instance produced by the timing model."""

    ho_type: HandoverType
    t1_ms: float
    t2_ms: float
    colocated: bool
    band_class: BandClass | None

    @property
    def total_ms(self) -> float:
        return self.t1_ms + self.t2_ms

    @property
    def interruption_ms(self) -> float:
        """Data-plane interruption — the execution stage only."""
        return self.t2_ms


class HandoverTimingModel:
    """Samples T1/T2 for a handover given its full context."""

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        t1_table: dict[tuple[HandoverType, bool], StageDistribution] | None = None,
        t2_table: dict[tuple[HandoverType, bool], StageDistribution] | None = None,
        t1_scale: float = 1.0,
        t2_scale: float = 1.0,
    ):
        self._rng = rng
        self._t1 = dict(t1_table or _DEFAULT_T1)
        self._t2 = dict(t2_table or _DEFAULT_T2)
        if t1_scale <= 0 or t2_scale <= 0:
            raise ValueError("stage scales must be positive")
        self._t1_scale = t1_scale
        self._t2_scale = t2_scale

    def sample(
        self,
        ho_type: HandoverType,
        *,
        standalone: bool = False,
        nsa_attached: bool = False,
        band_class: BandClass | None = None,
        colocated: bool = True,
    ) -> HandoverExecution:
        """Sample one handover's stage durations.

        Args:
            ho_type: the procedure being executed.
            standalone: True when the UE is on SA 5G (MCGH context).
            nsa_attached: for LTEH only — True when the UE also holds an
                NSA SCG leg, which inflates both stages.
            band_class: band class of the NR leg involved (drives the
                mmWave execution multiplier); None for pure-LTE handovers.
            colocated: whether source/target eNB and gNB share a tower.
        """
        if ho_type is HandoverType.NONE:
            raise ValueError("cannot time a non-handover")
        if ho_type is HandoverType.LTEH and nsa_attached:
            t1_dist, t2_dist = _NSA_LTEH_T1, _NSA_LTEH_T2
        else:
            key = (ho_type, standalone)
            try:
                t1_dist = self._t1[key]
                t2_dist = self._t2[key]
            except KeyError:
                raise ValueError(
                    f"no timing calibrated for {ho_type} (standalone={standalone})"
                ) from None

        t1 = t1_dist.sample_ms(self._rng) * self._t1_scale
        t2 = t2_dist.sample_ms(self._rng) * self._t2_scale
        if not colocated and not standalone and ho_type is not HandoverType.LTEH:
            # Cross-tower eNB<->gNB coordination penalty; LTEH under plain
            # LTE has no gNB to coordinate with.
            t1 += NON_COLOCATION_T1_PENALTY_MS
        if band_class is BandClass.MMWAVE:
            t2 *= MMWAVE_T2_MULTIPLIER
        return HandoverExecution(
            ho_type=ho_type,
            t1_ms=t1,
            t2_ms=t2,
            colocated=colocated,
            band_class=band_class,
        )
