"""Per-handover signaling message accounting (Section 5.1).

The paper counts three RRC message types (measurement report, RRC
reconfiguration, RRC reconfiguration complete), MAC-layer RACH procedures,
and PHY-layer SSB/SSR measurements around each handover, then reports
per-distance rates: SA cuts HO-related signaling ~3.8× versus LTE
(fewer handovers), while NSA mmWave's PHY-layer procedures blow up >5×
versus low-band (beam management over many candidate beams).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.radio.bands import BandClass
from repro.rrc.taxonomy import HandoverType


@dataclass(slots=True)
class SignalingTally:
    """Message counts attributed to one handover (or accumulated)."""

    rrc_measurement_reports: int = 0
    rrc_reconfigurations: int = 0
    rrc_reconfiguration_completes: int = 0
    rach_procedures: int = 0
    phy_ssb_measurements: int = 0

    @property
    def rrc_total(self) -> int:
        return (
            self.rrc_measurement_reports
            + self.rrc_reconfigurations
            + self.rrc_reconfiguration_completes
        )

    @property
    def total(self) -> int:
        return self.rrc_total + self.rach_procedures + self.phy_ssb_measurements

    def add(self, other: "SignalingTally") -> None:
        self.rrc_measurement_reports += other.rrc_measurement_reports
        self.rrc_reconfigurations += other.rrc_reconfigurations
        self.rrc_reconfiguration_completes += other.rrc_reconfiguration_completes
        self.rach_procedures += other.rach_procedures
        self.phy_ssb_measurements += other.phy_ssb_measurements


#: PHY-layer SSB measurements executed around one handover, per band
#: class. mmWave gNBs sweep many beams (64-beam SSB bursts plus beam
#: refinement) which is where the paper's >5x PHY signaling inflation
#: comes from; sub-6 GHz cells use wide beams.
_SSB_PER_HO: dict[BandClass, int] = {
    BandClass.LOW: 8,
    BandClass.MID: 12,
    BandClass.MMWAVE: 64,
}

#: Extra RACH attempts by band class (mmWave beam alignment retries).
_RACH_PER_HO: dict[BandClass, int] = {
    BandClass.LOW: 1,
    BandClass.MID: 1,
    BandClass.MMWAVE: 2,
}


class SignalingModel:
    """Produces the signaling tally attributed to one handover."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def for_handover(
        self,
        ho_type: HandoverType,
        *,
        reports_observed: int,
        band_class: BandClass | None,
    ) -> SignalingTally:
        """Tally the messages one handover generates.

        Args:
            ho_type: procedure executed.
            reports_observed: measurement reports the network consumed to
                reach this decision (at least 1).
            band_class: band class of the NR leg (None for pure LTE).
        """
        if ho_type is HandoverType.NONE:
            raise ValueError("no signaling for a non-handover")
        reports = max(int(reports_observed), 1)
        # SCG Change is release + addition: two reconfiguration exchanges.
        reconf = 2 if ho_type is HandoverType.SCGC else 1
        effective_class = band_class or BandClass.MID
        rach = _RACH_PER_HO[effective_class]
        if ho_type is HandoverType.SCGR:
            rach = 0  # releasing the SCG needs no random access
        if band_class is not None:
            ssb = _SSB_PER_HO[effective_class]
        else:
            # A pure-LTE handover measures across the carrier's many LTE
            # layers through measurement gaps (5-9 bands, §3) — the bulk
            # of the PHY-layer cost the paper attributes to LTE mobility
            # (SA 5G cuts HO signaling ~3.8x, §5.1).
            ssb = 26
        # Small stochastic jitter: real logs show occasional re-tries.
        if self._rng.random() < 0.1:
            rach += 1
        return SignalingTally(
            rrc_measurement_reports=reports,
            rrc_reconfigurations=reconf,
            rrc_reconfiguration_completes=reconf,
            rach_procedures=rach,
            phy_ssb_measurements=ssb,
        )
